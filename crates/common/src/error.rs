//! Error types shared across the storage, engine, and coordination layers.
//!
//! The error vocabulary mirrors the paper's Algorithm 1: user transactions
//! fail with `WrongNodeError` when ownership has moved, membership
//! transactions fail with `NodeAlreadyExist` / `NodeNotExist`, and the
//! conditional append path surfaces `LsnMismatch` (the CAS failure that
//! MarlinCommit converts into an abort + cache invalidation).

use crate::ids::{GranuleId, LogId, Lsn, NodeId};
use std::error::Error;
use std::fmt;

/// Errors raised by the disaggregated storage service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// Conditional append failed: the log tail has advanced past the
    /// caller's expected LSN. Carries the log's *current* LSN so the caller
    /// can refresh its tracker and retry (paper §4.3.1).
    LsnMismatch {
        log: LogId,
        expected: Lsn,
        current: Lsn,
    },
    /// The referenced log instance does not exist (e.g. the node was
    /// deleted and its GLog garbage-collected).
    NoSuchLog(LogId),
    /// The requested page has never been written.
    NoSuchPage,
    /// The page store has not yet replayed the log up to the requested LSN
    /// and the caller asked not to wait.
    ReplayLag { applied: Lsn, requested: Lsn },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::LsnMismatch {
                log,
                expected,
                current,
            } => write!(
                f,
                "conditional append on {log} failed: expected LSN {expected}, log is at {current}"
            ),
            StorageError::NoSuchLog(log) => write!(f, "log {log} does not exist"),
            StorageError::NoSuchPage => write!(f, "page has never been written"),
            StorageError::ReplayLag { applied, requested } => write!(
                f,
                "page store replay at LSN {applied}, behind requested {requested}"
            ),
        }
    }
}

impl Error for StorageError {}

/// Errors raised by the transaction layer (user and reconfiguration txns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// The granule is not owned by the node that received the request; the
    /// client should redirect to `owner` (Algorithm 1 lines 5-6).
    WrongNode { granule: GranuleId, owner: NodeId },
    /// 2PL `NO_WAIT`: a lock conflict aborts the requester immediately.
    LockConflict { granule: GranuleId },
    /// MarlinCommit aborted because a cross-node modification was detected
    /// on one of the participant logs (TryLog returned ABORT).
    CommitConflict { log: LogId, current: Lsn },
    /// A participant voted NO or could not be reached in 2PC.
    VoteNo,
    /// The transaction was aborted because its node is shutting down or
    /// has been removed from the membership.
    NodeUnavailable(NodeId),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WrongNode { granule, owner } => {
                write!(f, "granule {granule} is owned by {owner}, not this node")
            }
            TxnError::LockConflict { granule } => {
                write!(f, "NO_WAIT lock conflict on granule {granule}")
            }
            TxnError::CommitConflict { log, current } => {
                write!(
                    f,
                    "cross-node modification detected on {log} (now at LSN {current})"
                )
            }
            TxnError::VoteNo => write!(f, "a 2PC participant voted NO"),
            TxnError::NodeUnavailable(n) => write!(f, "node {n} is unavailable"),
        }
    }
}

impl Error for TxnError {}

/// Errors raised by coordination (reconfiguration) operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordError {
    /// `AddNodeTxn` found the node already present in MTable.
    NodeAlreadyExist(NodeId),
    /// `DeleteNodeTxn` found the node absent from MTable.
    NodeNotExist(NodeId),
    /// `MigrationTxn`/`RecoveryMigrTxn` data-effectiveness check failed:
    /// the granule is not currently owned by the expected source node.
    WrongOwner {
        granule: GranuleId,
        expected: NodeId,
        actual: NodeId,
    },
    /// The underlying commit aborted (cross-node modification); retryable.
    Aborted(TxnError),
    /// The external coordination service rejected the request (baselines).
    ServiceError(String),
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NodeAlreadyExist(n) => write!(f, "node {n} already in membership"),
            CoordError::NodeNotExist(n) => write!(f, "node {n} not in membership"),
            CoordError::WrongOwner {
                granule,
                expected,
                actual,
            } => write!(
                f,
                "granule {granule} expected owner {expected} but found {actual}"
            ),
            CoordError::Aborted(e) => write!(f, "reconfiguration aborted: {e}"),
            CoordError::ServiceError(msg) => write!(f, "coordination service error: {msg}"),
        }
    }
}

impl Error for CoordError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoordError::Aborted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TxnError> for CoordError {
    fn from(e: TxnError) -> Self {
        CoordError::Aborted(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::LsnMismatch {
            log: LogId::SysLog,
            expected: Lsn(2),
            current: Lsn(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("SysLog"));
        assert!(msg.contains("expected LSN 2"));
        assert!(msg.contains("at 3"));
    }

    #[test]
    fn wrong_node_names_the_owner() {
        let e = TxnError::WrongNode {
            granule: GranuleId(9),
            owner: NodeId(4),
        };
        assert!(e.to_string().contains("N4"));
        assert!(e.to_string().contains("G9"));
    }

    #[test]
    fn coord_error_chains_source() {
        let inner = TxnError::CommitConflict {
            log: LogId::GLog(NodeId(1)),
            current: Lsn(7),
        };
        let outer: CoordError = inner.clone().into();
        assert_eq!(outer, CoordError::Aborted(inner));
        assert!(Error::source(&outer).is_some());
    }
}
