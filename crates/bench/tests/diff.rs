//! End-to-end coverage for the `bench-diff` regression gate: the CLI
//! must pass on a noisy-but-honest tree, fail on the planted-regression
//! fixture (the CI negative self-test runs the same pair), and emit a
//! machine-readable verdict plus the aggregated trajectory.

use marlin_bench::diff::{diff_dirs, parse_json, DiffConfig, Json};
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/diff/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn bench_diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .args(args)
        .output()
        .expect("bench-diff must spawn")
}

#[test]
fn wall_noise_passes_but_a_planted_regression_fails() {
    // 1.55x slower wall with identical deterministic output: pass.
    let out = bench_diff(&[&fixture("baseline"), &fixture("pass")]);
    assert!(
        out.status.success(),
        "honest noise must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Drifted commits + collapsed virt-per-wall: exit 1, both named.
    let out = bench_diff(&[&fixture("baseline"), &fixture("regression")]);
    assert_eq!(out.status.code(), Some(1), "regressions must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("value:commits"), "{stdout}");
    assert!(stdout.contains("virtual_per_wall"), "{stdout}");
    assert!(stdout.contains("PERF REGRESSION"), "{stdout}");
}

#[test]
fn verdict_and_trajectory_artifacts_are_written_and_parse() {
    let dir = std::env::temp_dir().join(format!("bench-diff-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let verdict_path = dir.join("verdict.json");
    let trajectory_path = dir.join("BENCH_TRAJECTORY.json");

    let out = bench_diff(&[
        &fixture("baseline"),
        &fixture("regression"),
        "--out",
        &verdict_path.to_string_lossy(),
        "--trajectory",
        &trajectory_path.to_string_lossy(),
    ]);
    assert_eq!(out.status.code(), Some(1));

    let verdict = std::fs::read_to_string(&verdict_path).expect("verdict written");
    let v = parse_json(&verdict).expect("verdict parses");
    assert_eq!(
        v.get("status").and_then(|s| match s {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }),
        Some("fail")
    );

    let trajectory = std::fs::read_to_string(&trajectory_path).expect("trajectory written");
    let t = parse_json(&trajectory).expect("trajectory parses");
    match t.get("targets") {
        Some(Json::Arr(targets)) => assert_eq!(targets.len(), 1, "one fixture target"),
        other => panic!("trajectory must carry a targets array, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn min_of_n_across_directories_absorbs_one_noisy_run() {
    // regression's wall collapse is forgiven when a second, healthy run
    // rides along — but its deterministic drift still fails the diff.
    let base = fixture("baseline");
    let v = diff_dirs(
        Path::new(&base),
        &[
            Path::new(&fixture("regression")),
            Path::new(&fixture("pass")),
        ],
        &DiffConfig::default(),
    )
    .expect("fixture dirs load");
    assert!(!v.pass(), "drifted commits fail regardless of wall noise");
    assert!(
        !v.checks
            .iter()
            .any(|c| c.name == "virtual_per_wall"
                && c.status == marlin_bench::diff::CheckStatus::Fail),
        "best-of-N rate clears the floor: {:?}",
        v.checks
    );
}

#[test]
fn missing_baseline_directory_is_a_usage_error_not_a_pass() {
    let out = bench_diff(&[&fixture("no-such-dir"), &fixture("pass")]);
    assert_eq!(out.status.code(), Some(2), "I/O errors must exit 2");
}
