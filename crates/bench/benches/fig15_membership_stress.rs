//! Figure 15: MTable stress test — membership-update performance as the
//! node count grows (one update per node per 15 s).
//!
//! Paper: "Marlin performs comparably to ZooKeeper-based approaches up to
//! 160 nodes. Beyond that point, performance degrades due to the overhead
//! of optimistic concurrency control in the TryLog() API for SysLog,
//! which incurs retries under high contention."

use marlin_bench::banner;
use marlin_cluster::harness::{
    expected_membership_updates, maybe_write_json, run, Scenario, SimRunner,
};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::Table;
use marlin_sim::SECOND;

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 15 — MTable stress: membership updates vs node count",
        "Marlin comparable to ZK up to ~160 nodes, then OCC retries degrade it",
    );
    let counts = [10u32, 20, 40, 80, 160, 320, 640];
    // 50 s horizon: the 15/30/45 s update bursts all resolve in-window.
    let (period, horizon) = (15 * SECOND, 50 * SECOND);
    let mut reports = Vec::new();
    let mut t = Table::new(&[
        "nodes",
        "system",
        "completed",
        "mean latency",
        "CAS retries",
    ]);
    for &n in &counts {
        for kind in CoordKind::zk_comparison() {
            let scenario = Scenario::membership(kind, n, period, horizon);
            let mut runner = SimRunner::new(&scenario);
            let report = run(scenario, &mut runner);
            let m = &report.metrics;
            let expected = expected_membership_updates(n, period, horizon);
            t.row(&[
                format!("{n}"),
                report.backend.clone(),
                format!("{}/{expected}", m.membership_commits),
                format!("{:.1}ms", m.membership_mean_latency / 1e6),
                format!("{}", m.membership_retries),
            ]);
            reports.push(report);
        }
    }
    print!("{}", t.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig15_membership_stress", started, &reports);
}
