//! Figure 15: MTable stress test — membership-update performance as the
//! node count grows (one update per node per 15 s).
//!
//! Paper: "Marlin performs comparably to ZooKeeper-based approaches up to
//! 160 nodes. Beyond that point, performance degrades due to the overhead
//! of optimistic concurrency control in the TryLog() API for SysLog,
//! which incurs retries under high contention."

use marlin_bench::banner;
use marlin_cluster::params::{CoordKind, SimParams};
use marlin_cluster::report::Table;
use marlin_cluster::scenarios::membership::run_membership_stress;
use marlin_sim::SECOND;

fn main() {
    banner(
        "Figure 15 — MTable stress: membership updates vs node count",
        "Marlin comparable to ZK up to ~160 nodes, then OCC retries degrade it",
    );
    let counts = [10u32, 20, 40, 80, 160, 320, 640];
    // 50 s horizon: the 15/30/45 s update bursts all resolve in-window.
    let (period, horizon) = (15 * SECOND, 50 * SECOND);
    let mut t = Table::new(&[
        "nodes",
        "system",
        "completed",
        "mean latency",
        "CAS retries",
    ]);
    for &n in &counts {
        for kind in CoordKind::zk_comparison() {
            let r = run_membership_stress(kind, n, period, horizon, SimParams::default());
            let expected =
                marlin_cluster::scenarios::membership::expected_updates(n, period, horizon);
            t.row(&[
                format!("{n}"),
                kind.name().into(),
                format!("{:.0}/{expected}", r.throughput * 50.0),
                format!("{:.1}ms", r.mean_latency as f64 / 1e6),
                format!("{}", r.retries),
            ]);
        }
    }
    print!("{}", t.render());
}
