//! Figure 13: cost vs migration duration in the geo-distributed setting
//! (four regions: US West, East Asia, UK South, Australia East; the
//! external coordination services are pinned in US West).
//!
//! Paper: "Marlin achieved up to 4.9× shorter migration duration than
//! ZooKeeper-based methods and up to 9.5× shorter than FDB across all
//! scales ... Marlin remains the most cost-efficient."
//!
//! Beyond the paper's static sweep, the second table runs the §6.5 setup
//! as a live multi-region control loop (`Scenario::geo_autoscale`): one
//! region's demand spikes 2×, the region-aware controller provisions
//! nodes into that region only, and the report's per-region split shows
//! where the capacity, the commits, and the dollars went.

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, secs, Table};

const REGION_NAMES: [&str; 4] = ["US West", "East Asia", "UK South", "Australia East"];

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 13 — cost per Mtxn vs migration duration (geo-distributed, 4 regions)",
        "Marlin up to 4.9x faster than ZK-based, up to 9.5x faster than FDB; cheapest",
    );
    let scales = [4u32, 8];
    let mut reports = Vec::new();
    let mut t = Table::new(&[
        "scale",
        "system",
        "duration",
        "vs Marlin",
        "$/Mtxn",
        "Meta $",
    ]);
    for &n in &scales {
        let mut marlin_dur = 0.0f64;
        for kind in CoordKind::all() {
            let scenario = Scenario::sweep_point(kind, n, scale()).geo();
            let mut runner = SimRunner::new(&scenario);
            let report = run(scenario, &mut runner);
            let m = &report.metrics;
            if kind == CoordKind::Marlin {
                marlin_dur = m.migration_duration as f64;
            }
            t.row(&[
                format!("SO{}-{}", n, 2 * n),
                report.backend.clone(),
                secs(m.migration_duration),
                ratio(m.migration_duration as f64, marlin_dur),
                format!("{:.4}", m.cost_per_mtxn),
                format!("{:.4}", m.meta_cost),
            ]);
            reports.push(report);
        }
    }
    print!("{}", t.render());

    // The live §6.5 loop: region 1 spikes 2×, the controller answers
    // with region-targeted scale-out and a region-local drain.
    println!("\ngeo autoscale (closed loop; region 1 spikes 2x, controller region-aware):");
    let scenario = Scenario::geo_autoscale(CoordKind::Marlin, 40_000 / scale().max(1));
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    let mut t = Table::new(&["region", "end nodes", "commits", "db $", "decisions"]);
    for b in &report.metrics.region_breakdown {
        let decisions: Vec<String> = report
            .actions()
            .iter()
            .filter_map(|rec| rec.action.as_ref())
            .filter(|a| {
                matches!(
                    a,
                    marlin_autoscaler::ScaleAction::AddNodes {
                        region: Some(r),
                        ..
                    } if r.0 == b.region
                )
            })
            .map(marlin_cluster::harness::action_signature)
            .collect();
        t.row(&[
            REGION_NAMES[b.region as usize].to_string(),
            b.live_nodes.to_string(),
            b.commits.to_string(),
            format!("{:.4}", b.db_cost),
            if decisions.is_empty() {
                "-".to_string()
            } else {
                decisions.join(" ")
            },
        ]);
    }
    print!("{}", t.render());
    println!(
        "  peak nodes {} → final {}; decision log: {:?}",
        report.peak_nodes(),
        report.metrics.live_nodes,
        report.decision_signature()
    );
    reports.push(report);
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig13_geo_distributed", started, &reports);
}
