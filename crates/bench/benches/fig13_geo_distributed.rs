//! Figure 13: cost vs migration duration in the geo-distributed setting
//! (four regions: US West, East Asia, UK South, Australia East; the
//! external coordination services are pinned in US West).
//!
//! Paper: "Marlin achieved up to 4.9× shorter migration duration than
//! ZooKeeper-based methods and up to 9.5× shorter than FDB across all
//! scales ... Marlin remains the most cost-efficient."

use marlin_bench::{banner, scale};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, secs, Table};
use marlin_cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};

fn main() {
    banner(
        "Figure 13 — cost per Mtxn vs migration duration (geo-distributed, 4 regions)",
        "Marlin up to 4.9x faster than ZK-based, up to 9.5x faster than FDB; cheapest",
    );
    let scales = [4u32, 8];
    let mut t = Table::new(&[
        "scale",
        "system",
        "duration",
        "vs Marlin",
        "$/Mtxn",
        "Meta $",
    ]);
    for &n in &scales {
        let mut marlin_dur = 0.0f64;
        for kind in CoordKind::all() {
            let spec = ScaleOutSpec::sweep_point(kind, n, scale()).geo();
            let s = summarize(&run_scale_out(&spec));
            if kind == CoordKind::Marlin {
                marlin_dur = s.migration_duration as f64;
            }
            t.row(&[
                format!("SO{}-{}", n, 2 * n),
                s.kind.name().into(),
                secs(s.migration_duration),
                ratio(s.migration_duration as f64, marlin_dur),
                format!("{:.4}", s.cost_per_mtxn),
                format!("{:.4}", s.meta_cost),
            ]);
        }
    }
    print!("{}", t.render());
}
