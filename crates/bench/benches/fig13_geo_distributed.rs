//! Figure 13: cost vs migration duration in the geo-distributed setting
//! (four regions: US West, East Asia, UK South, Australia East; the
//! external coordination services are pinned in US West).
//!
//! Paper: "Marlin achieved up to 4.9× shorter migration duration than
//! ZooKeeper-based methods and up to 9.5× shorter than FDB across all
//! scales ... Marlin remains the most cost-efficient."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, secs, Table};

fn main() {
    banner(
        "Figure 13 — cost per Mtxn vs migration duration (geo-distributed, 4 regions)",
        "Marlin up to 4.9x faster than ZK-based, up to 9.5x faster than FDB; cheapest",
    );
    let scales = [4u32, 8];
    let mut reports = Vec::new();
    let mut t = Table::new(&[
        "scale",
        "system",
        "duration",
        "vs Marlin",
        "$/Mtxn",
        "Meta $",
    ]);
    for &n in &scales {
        let mut marlin_dur = 0.0f64;
        for kind in CoordKind::all() {
            let scenario = Scenario::sweep_point(kind, n, scale()).geo();
            let mut runner = SimRunner::new(&scenario);
            let report = run(scenario, &mut runner);
            let m = &report.metrics;
            if kind == CoordKind::Marlin {
                marlin_dur = m.migration_duration as f64;
            }
            t.row(&[
                format!("SO{}-{}", n, 2 * n),
                report.backend.clone(),
                secs(m.migration_duration),
                ratio(m.migration_duration as f64, marlin_dur),
                format!("{:.4}", m.cost_per_mtxn),
                format!("{:.4}", m.meta_cost),
            ]);
            reports.push(report);
        }
    }
    print!("{}", t.render());
    maybe_write_json(&reports);
}
