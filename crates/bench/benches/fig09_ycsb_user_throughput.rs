//! Figure 9: real-time user-transaction throughput and abort ratio (YCSB)
//! during the Figure 8 scale-out.
//!
//! Paper: "the throughput of user transactions reaches a higher level of
//! approximately 12k tps more rapidly than ZooKeeper-based approaches.
//! Furthermore, Marlin has a lower abort rate for user transactions."

use marlin_bench::{banner, scale};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{render_rate_series, secs, Table};
use marlin_cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};
use marlin_sim::SECOND;

fn main() {
    banner(
        "Figure 9 — real-time user txn throughput + abort ratio (YCSB, SO8-16)",
        "throughput recovers to ~12k tps fastest under Marlin; lowest abort ratio",
    );
    let mut rows = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let spec = ScaleOutSpec::ycsb_so8_16(kind, scale());
        let sim = run_scale_out(&spec);
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("{} user tps", kind.name()),
                &sim.metrics.user_commits,
                25
            )
        );
        // Abort-ratio series (per second).
        println!("# {} abort ratio", kind.name());
        for t in (0..50).step_by(5) {
            let at = t * SECOND;
            println!(
                "{:8.1}s  {:9.2}%",
                t as f64,
                sim.metrics.abort_ratio_at(at) * 100.0
            );
        }
        let s = summarize(&sim);
        rows.push((
            kind.name().to_string(),
            sim.metrics.user_commits.rate_at(8 * SECOND),
            sim.metrics.user_commits.rate_at(45 * SECOND),
            s.abort_ratio * 100.0,
            s.migration_duration,
        ));
    }
    println!();
    let mut table = Table::new(&["system", "tps@8s", "tps@45s", "abort%", "reconfig"]);
    for (name, pre, post, abort, dur) in rows {
        table.row(&[
            name,
            format!("{pre:.0}"),
            format!("{post:.0}"),
            format!("{abort:.2}"),
            secs(dur),
        ]);
    }
    print!("{}", table.render());
}
