//! Figure 9: real-time user-transaction throughput and abort ratio (YCSB)
//! during the Figure 8 scale-out.
//!
//! Paper: "the throughput of user transactions reaches a higher level of
//! approximately 12k tps more rapidly than ZooKeeper-based approaches.
//! Furthermore, Marlin has a lower abort rate for user transactions."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{render_rate_series, secs, Table};
use marlin_sim::SECOND;

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 9 — real-time user txn throughput + abort ratio (YCSB, SO8-16)",
        "throughput recovers to ~12k tps fastest under Marlin; lowest abort ratio",
    );
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let scenario = Scenario::ycsb_scale_out(kind, scale());
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("{} user tps", kind.name()),
                &runner.sim().metrics.user_commits,
                25
            )
        );
        // Abort-ratio series (per second).
        println!("# {} abort ratio", kind.name());
        for t in (0..50).step_by(5) {
            let at = t * SECOND;
            println!(
                "{:8.1}s  {:9.2}%",
                t as f64,
                runner.sim().metrics.abort_ratio_at(at) * 100.0
            );
        }
        rows.push((
            kind.name().to_string(),
            runner.sim().metrics.user_commits.rate_at(8 * SECOND),
            runner.sim().metrics.user_commits.rate_at(45 * SECOND),
            report.metrics.abort_ratio * 100.0,
            report.metrics.migration_duration,
        ));
        reports.push(report);
    }
    println!();
    let mut table = Table::new(&["system", "tps@8s", "tps@45s", "abort%", "reconfig"]);
    for (name, pre, post, abort, dur) in rows {
        table.row(&[
            name,
            format!("{pre:.0}"),
            format!("{post:.0}"),
            format!("{abort:.2}"),
            secs(dur),
        ]);
    }
    print!("{}", table.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig09_ycsb_user_throughput", started, &reports);
}
