//! Closed-loop autoscaling bench: the controller-driven §6.6 burst
//! (scripted in Figure 14, decided by a policy here).
//!
//! For each coordination backend the bench runs the 400→800→400-client
//! spike with the cluster free to move between 8 and 16 nodes under the
//! reactive policy, and reports what the *decisions* cost: time from the
//! load spike to the scale-out decision, time from the load drop until
//! the extra nodes are released, throughput, and total dollars. Faster
//! coordination lets the same policy both react faster and stop paying
//! for burst capacity sooner — the paper's claim, now end-to-end through
//! the controller instead of a script.

use marlin_autoscaler::ScaleAction;
use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::Table;
use marlin_sim::SECOND;

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Closed-loop autoscale — reactive policy, 400→800→400 clients, 8↔16 nodes",
        "the controller reproduces the Figure 14 cycle without scripted scale events",
    );
    let mut reports = Vec::new();
    let mut table = Table::new(&[
        "system",
        "peak nodes",
        "scale-out decided",
        "release lag",
        "commits",
        "total $",
    ]);
    for kind in CoordKind::zk_comparison() {
        let scenario = Scenario::autoscale_spike(kind, scale().max(10));
        let min_nodes = scenario.initial_nodes;
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        let spike_at = 20 * SECOND;
        let calm_at = 80 * SECOND;
        let decided_at =
            report.first_action_at(spike_at, |a| matches!(a, ScaleAction::AddNodes { .. }));
        let lag = report.release_lag(min_nodes, calm_at);
        table.row(&[
            kind.name().to_string(),
            format!("{}", report.peak_nodes()),
            decided_at.map_or("-".into(), |t| {
                format!("+{:.1}s", (t - spike_at) as f64 / 1e9)
            }),
            lag.map_or("never".into(), |l| format!("{:.1}s", l as f64 / 1e9)),
            format!("{}", report.metrics.commits),
            format!("{:.4}", report.metrics.total_cost),
        ]);
        reports.push(report);
    }
    print!("{}", table.render());

    // The diurnal companion: two demand cycles between 4 and 12 nodes'
    // worth of load, same reactive policy. The interesting number is how
    // many scale actions the controller spends tracking the curve.
    println!("\ndiurnal curve (Marlin, 2 cycles, 4-12 nodes):");
    let scenario = Scenario::autoscale_diurnal(CoordKind::Marlin, 20_000 / scale().max(10));
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    println!(
        "  peak nodes {}  scale actions {}  commits {}  total ${:.4}",
        report.peak_nodes(),
        report.scale_action_count(),
        report.metrics.commits,
        report.metrics.total_cost,
    );
    reports.push(report);
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("autoscale_closed_loop", started, &reports);
}
