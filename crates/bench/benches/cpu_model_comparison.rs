//! CPU-model comparison bench: the §6.6 autoscale spike priced by the
//! analytic EMA station vs the per-request queueing station.
//!
//! Marlin's tail-latency results (§6) hinge on what scaling events do to
//! p99s. The analytic model clamps per-request congestion delay below
//! saturation, so its p99 flattens exactly where the story gets
//! interesting; the per-request station books concrete service slots and
//! reports exact sojourn times. This bench runs the same spike under
//! both models (same seed, same policy — reactive with the 150 ms p99
//! escape hatch armed) and reports the divergence: spike-window p99,
//! peak p99, when the scale-out was decided, and what the run cost.

use marlin_autoscaler::ScaleAction;
use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::{CoordKind, CpuModel};
use marlin_cluster::report::Table;
use marlin_sim::{Nanos, SECOND};

fn main() {
    let started = std::time::Instant::now();
    banner(
        "CPU model comparison — autoscale spike, analytic vs per-request stations",
        "latency-accurate station models are what make scaling-policy comparisons credible",
    );
    let spike_at = 20 * SECOND;
    let mut reports = Vec::new();
    let mut table = Table::new(&[
        "cpu model",
        "spike p99",
        "peak p99",
        "scale-out decided",
        "commits",
        "total $",
    ]);
    for model in CpuModel::all() {
        let scenario = Scenario::cpu_model_comparison(CoordKind::Marlin, scale().max(10), model);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        let spike_p99: Nanos = report
            .log
            .iter()
            .filter(|r| r.at >= spike_at && r.at <= spike_at + 6 * SECOND)
            .map(|r| r.observation.p99_latency)
            .max()
            .unwrap_or(0);
        let peak_p99: Nanos = report
            .log
            .iter()
            .map(|r| r.observation.p99_latency)
            .max()
            .unwrap_or(0);
        let decided =
            report.first_action_at(spike_at, |a| matches!(a, ScaleAction::AddNodes { .. }));
        table.row(&[
            report.cpu_model.clone(),
            format!("{:.1}ms", spike_p99 as f64 / 1e6),
            format!("{:.1}ms", peak_p99 as f64 / 1e6),
            decided.map_or("never".into(), |t| {
                format!("+{:.1}s", (t - spike_at) as f64 / 1e9)
            }),
            format!("{}", report.metrics.commits),
            format!("{:.4}", report.metrics.total_cost),
        ]);
        reports.push((report, spike_p99));
    }
    print!("{}", table.render());
    let divergence = reports[1].1 as f64 / reports[0].1.max(1) as f64;
    println!(
        "p99 divergence at the spike: {divergence:.2}x — the analytic clamp hides {:.0}ms of real queueing delay",
        reports[1].1.saturating_sub(reports[0].1) as f64 / 1e6
    );
    let reports: Vec<_> = reports.into_iter().map(|(r, _)| r).collect();
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("cpu_model_comparison", started, &reports);
}
