//! Figure 11: real-time user-transaction throughput and abort ratio
//! (TPC-C) during a scale-out with 6.4K warehouse migrations.
//!
//! Paper: "Marlin completes the migration 2.5× and 1.5× faster than S-ZK
//! and L-ZK ... incurs less degradation of user transactions."

use marlin_bench::{banner, scale};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, render_rate_series, secs, Table};
use marlin_cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};

fn main() {
    banner(
        "Figure 11 — real-time user txn throughput + abort ratio (TPC-C, SO8-16)",
        "Marlin migrates 2.5x/1.5x faster than S-ZK/L-ZK; less user degradation",
    );
    let mut results = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let spec = ScaleOutSpec::tpcc_so8_16(kind, scale());
        let sim = run_scale_out(&spec);
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("{} user tps", kind.name()),
                &sim.metrics.user_commits,
                15
            )
        );
        results.push(summarize(&sim));
    }
    println!();
    let marlin = results[0].clone();
    let mut table = Table::new(&[
        "system",
        "warehouse migs",
        "duration",
        "vs Marlin",
        "abort%",
        "commits",
    ]);
    for r in &results {
        table.row(&[
            r.kind.name().into(),
            format!(
                "{}",
                (r.migration_throughput * (r.migration_duration as f64 / 1e9)).round() as u64
            ),
            secs(r.migration_duration),
            ratio(
                r.migration_duration as f64,
                marlin.migration_duration as f64,
            ),
            format!("{:.2}", r.abort_ratio * 100.0),
            format!("{}", r.commits),
        ]);
    }
    print!("{}", table.render());
}
