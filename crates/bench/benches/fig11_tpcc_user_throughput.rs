//! Figure 11: real-time user-transaction throughput and abort ratio
//! (TPC-C) during a scale-out with 6.4K warehouse migrations.
//!
//! Paper: "Marlin completes the migration 2.5× and 1.5× faster than S-ZK
//! and L-ZK ... incurs less degradation of user transactions."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, render_rate_series, secs, Table};

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 11 — real-time user txn throughput + abort ratio (TPC-C, SO8-16)",
        "Marlin migrates 2.5x/1.5x faster than S-ZK/L-ZK; less user degradation",
    );
    let mut reports = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let scenario = Scenario::tpcc_scale_out(kind, scale());
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("{} user tps", kind.name()),
                &runner.sim().metrics.user_commits,
                15
            )
        );
        reports.push(report);
    }
    println!();
    let marlin = reports[0].metrics.clone();
    let mut table = Table::new(&[
        "system",
        "warehouse migs",
        "duration",
        "vs Marlin",
        "abort%",
        "commits",
    ]);
    for r in &reports {
        let m = &r.metrics;
        table.row(&[
            r.backend.clone(),
            format!("{}", m.migrations),
            secs(m.migration_duration),
            ratio(
                m.migration_duration as f64,
                marlin.migration_duration as f64,
            ),
            format!("{:.2}", m.abort_ratio * 100.0),
            format!("{}", m.commits),
        ]);
    }
    print!("{}", table.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig11_tpcc_user_throughput", started, &reports);
}
