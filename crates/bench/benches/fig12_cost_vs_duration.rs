//! Figure 12: cost vs migration duration across scale-out sizes
//! (SO1-2, SO2-4, SO4-8, SO8-16), single region, all four systems.
//!
//! Paper: "(a) Marlin maintains the lowest cost per user transaction and
//! shortest migration duration, with up to 4.4× lower cost than L-ZK in
//! SO1-2 and 2.5× faster migration than S-ZK in SO8-16. (b) Meta Cost
//! constitutes a decreasing portion (e.g. 75%→28% in L-ZK) of total cost.
//! (c) Marlin's migration throughput increases linearly with scale while
//! ZK/FDB show diminishing gains."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{secs, Table};

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 12 — cost per Mtxn vs migration duration (SO1-2..SO8-16, single region)",
        "Marlin best on both axes; up to 4.4x cheaper than L-ZK (SO1-2), 2.5x faster than S-ZK (SO8-16)",
    );
    let scales = [1u32, 2, 4, 8];
    println!("\n(a) cost per Mtxn vs migration duration   (b) cost split   (c) migration tput");
    let mut reports = Vec::new();
    let mut t = Table::new(&[
        "scale",
        "system",
        "duration",
        "$/Mtxn",
        "DB $",
        "Meta $",
        "Meta %",
        "mig tput/s",
    ]);
    for &n in &scales {
        for kind in CoordKind::all() {
            let scenario = Scenario::sweep_point(kind, n, scale());
            let mut runner = SimRunner::new(&scenario);
            let report = run(scenario, &mut runner);
            let m = &report.metrics;
            let total = m.db_cost + m.meta_cost;
            t.row(&[
                format!("SO{}-{}", n, 2 * n),
                report.backend.clone(),
                secs(m.migration_duration),
                format!("{:.4}", m.cost_per_mtxn),
                format!("{:.4}", m.db_cost),
                format!("{:.4}", m.meta_cost),
                format!("{:.0}%", 100.0 * m.meta_cost / total),
                format!("{:.0}", m.migration_throughput),
            ]);
            reports.push(report);
        }
    }
    print!("{}", t.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig12_cost_vs_duration", started, &reports);
}
