//! Figure 10: (a) migration latency, (b) cost of user transactions.
//!
//! Paper: "Marlin reduces the migration latency by 2.57× and 1.87×
//! compared to S-ZK and L-ZK ... reduces cost by 1.35× and 1.61×."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, Table};

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 10 — migration latency & cost of UserTxn (YCSB, SO8-16)",
        "Marlin: 2.57x/1.87x lower migration latency; 1.35x/1.61x lower cost than S-ZK/L-ZK",
    );
    let reports: Vec<_> = CoordKind::zk_comparison()
        .into_iter()
        .map(|kind| {
            let scenario = Scenario::ycsb_scale_out(kind, scale());
            let mut runner = SimRunner::new(&scenario);
            run(scenario, &mut runner)
        })
        .collect();
    let marlin = reports[0].metrics.clone();

    println!("\n(a) MigrationTxn latency");
    let mut t = Table::new(&["system", "mean", "p50", "p99", "vs Marlin"]);
    for r in &reports {
        let m = &r.metrics;
        t.row(&[
            r.backend.clone(),
            format!("{:.2}ms", m.migration_latency.mean / 1e6),
            format!("{:.2}ms", m.migration_latency.p50 as f64 / 1e6),
            format!("{:.2}ms", m.migration_latency.p99 as f64 / 1e6),
            ratio(m.migration_latency.mean, marlin.migration_latency.mean),
        ]);
    }
    print!("{}", t.render());

    println!("\n(b) Cost of UserTxn ($/million txns, DB + Meta split)");
    let mut t = Table::new(&["system", "DB $", "Meta $", "$/Mtxn", "vs Marlin"]);
    for r in &reports {
        let m = &r.metrics;
        t.row(&[
            r.backend.clone(),
            format!("{:.4}", m.db_cost),
            format!("{:.4}", m.meta_cost),
            format!("{:.4}", m.cost_per_mtxn),
            ratio(m.cost_per_mtxn, marlin.cost_per_mtxn),
        ]);
    }
    print!("{}", t.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig10_latency_cost", started, &reports);
}
