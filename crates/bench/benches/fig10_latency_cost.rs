//! Figure 10: (a) migration latency, (b) cost of user transactions.
//!
//! Paper: "Marlin reduces the migration latency by 2.57× and 1.87×
//! compared to S-ZK and L-ZK ... reduces cost by 1.35× and 1.61×."

use marlin_bench::{banner, scale};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, Table};
use marlin_cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};

fn main() {
    banner(
        "Figure 10 — migration latency & cost of UserTxn (YCSB, SO8-16)",
        "Marlin: 2.57x/1.87x lower migration latency; 1.35x/1.61x lower cost than S-ZK/L-ZK",
    );
    let results: Vec<_> = CoordKind::zk_comparison()
        .into_iter()
        .map(|kind| summarize(&run_scale_out(&ScaleOutSpec::ycsb_so8_16(kind, scale()))))
        .collect();
    let marlin = results[0].clone();

    println!("\n(a) MigrationTxn latency");
    let mut t = Table::new(&["system", "mean", "p50", "p99", "vs Marlin"]);
    for r in &results {
        t.row(&[
            r.kind.name().into(),
            format!("{:.2}ms", r.migration_latency.mean / 1e6),
            format!("{:.2}ms", r.migration_latency.p50 as f64 / 1e6),
            format!("{:.2}ms", r.migration_latency.p99 as f64 / 1e6),
            ratio(r.migration_latency.mean, marlin.migration_latency.mean),
        ]);
    }
    print!("{}", t.render());

    println!("\n(b) Cost of UserTxn ($/million txns, DB + Meta split)");
    let mut t = Table::new(&["system", "DB $", "Meta $", "$/Mtxn", "vs Marlin"]);
    for r in &results {
        t.row(&[
            r.kind.name().into(),
            format!("{:.4}", r.db_cost),
            format!("{:.4}", r.meta_cost),
            format!("{:.4}", r.cost_per_mtxn),
            ratio(r.cost_per_mtxn, marlin.cost_per_mtxn),
        ]);
    }
    print!("{}", t.render());
}
