//! Predictive-vs-reactive frontier bench: the diurnal preset swept over
//! provisioning lead times.
//!
//! At lead 0 the reactive policy is near-optimal — capacity is free and
//! instant, prediction can only add model risk. As the lead grows,
//! react-after-breach pays for the whole lead in SLO violations while
//! the forecasting policy orders capacity ahead of the curve. The table
//! this bench prints is the SLO-violations-vs-node-cost frontier: one
//! row per (policy, lead) pair, same trace and seed throughout.

use marlin_autoscaler::ScaleAction;
use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, RunReport, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::Table;
use marlin_sim::{Nanos, SECOND};

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Predictive vs reactive — diurnal curve swept over provisioning lead times",
        "provision-before-demand beats react-after-breach once capacity takes time to land",
    );
    let granules = 20_000 / scale().max(10);
    let ceiling = Scenario::PRESET_P99_CEILING;
    let leads: [Nanos; 3] = [0, 5 * SECOND, 10 * SECOND];

    let mut reports: Vec<RunReport> = Vec::new();
    let mut table = Table::new(&[
        "policy",
        "lead",
        "first scale-out",
        "SLO viol. ticks",
        "max p99",
        "node-seconds",
        "total $",
        "forecast MAPE",
    ]);
    for &lead in &leads {
        for predictive in [false, true] {
            let mut s =
                Scenario::predictive_diurnal(CoordKind::Marlin, granules).provision_lead_time(lead);
            // The policy captures the lead at construction — rebuild it
            // after overriding the preset's lead.
            if predictive {
                let policy = s.predictive_policy(4, 12);
                s = s.policy(policy);
                s.name = format!("predictive-diurnal-lead{}", lead / SECOND);
            } else {
                let policy = s.slo_reactive_policy(4, 12, ceiling);
                s = s.policy(policy);
                s.name = format!("reactive-diurnal-lead{}", lead / SECOND);
            }
            let mut runner = SimRunner::new(&s);
            let report = run(s, &mut runner);
            let first_add =
                report.first_action_at(0, |a| matches!(a, ScaleAction::AddNodes { .. }));
            let max_p99 = report
                .log
                .iter()
                .map(|r| r.observation.p99_latency)
                .max()
                .unwrap_or(0);
            table.row(&[
                report.policy.clone().unwrap_or_default(),
                format!("{}s", lead / SECOND),
                first_add.map_or("never".into(), |t| format!("{:.0}s", t as f64 / 1e9)),
                format!("{}", report.slo_violation_ticks(ceiling)),
                format!("{:.1}ms", max_p99 as f64 / 1e6),
                format!("{:.0}", report.node_seconds()),
                format!("{:.4}", report.metrics.total_cost),
                report
                    .forecast
                    .map_or("-".into(), |f| format!("{:.3}", f.mape)),
            ]);
            reports.push(report);
        }
    }
    print!("{}", table.render());
    println!(
        "\nthe gap opens with the lead: reactive violations per lead = {:?}",
        leads
            .iter()
            .zip(reports.chunks(2))
            .map(|(l, pair)| (l / SECOND, pair[0].slo_violation_ticks(ceiling)))
            .collect::<Vec<_>>()
    );
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("predictive_vs_reactive", started, &reports);
}
