//! Table 1: the five reconfiguration transactions, demonstrated live on
//! the synchronous runtime with measured (real, not simulated) protocol
//! execution cost and participant sets.

use bytes::Bytes;
use marlin::common::{ClusterConfig, GranuleId, GranuleLayout, KeyRange, NodeId, TableId};
use marlin::core::LocalCluster;
use marlin_bench::banner;
use marlin_cluster::report::Table;
use std::time::Instant;

fn cluster() -> LocalCluster {
    LocalCluster::bootstrap(&ClusterConfig {
        initial_nodes: (0..4).map(NodeId).collect(),
        tables: vec![GranuleLayout::uniform(
            TableId(0),
            KeyRange::new(0, 6_400),
            64,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    })
}

fn main() {
    let started = Instant::now();
    banner(
        "Table 1 — the five reconfiguration transactions",
        "AddNodeTxn / DeleteNodeTxn / MigrationTxn / RecoveryMigrTxn / ScanGTableTxn",
    );
    let mut c = cluster();
    // Seed a little data so recovery has something to restore.
    c.user_txn(
        NodeId(3),
        TableId(0),
        &[],
        &[(4_900, Bytes::from_static(b"payload"))],
    )
    .unwrap();

    let mut t = Table::new(&["transaction", "participants", "result", "protocol time"]);

    let start = Instant::now();
    c.add_node(NodeId(4), "10.0.0.4:5000".into()).unwrap();
    t.row(&[
        "AddNodeTxn(N4)".into(),
        "SysLog (1PC)".into(),
        "committed".into(),
        format!("{:?}", start.elapsed()),
    ]);

    let start = Instant::now();
    c.migrate(
        NodeId(0),
        NodeId(4),
        TableId(0),
        vec![GranuleId(0), GranuleId(1)],
    )
    .unwrap();
    t.row(&[
        "MigrationTxn(G0,G1: N0→N4)".into(),
        "{N0, N4} (2PC)".into(),
        "committed".into(),
        format!("{:?}", start.elapsed()),
    ]);

    c.kill(NodeId(3));
    let start = Instant::now();
    c.recovery_migrate(NodeId(1), NodeId(3), vec![GranuleId(48), GranuleId(49)])
        .unwrap();
    t.row(&[
        "RecoveryMigrTxn(G48,G49: N3→N1)".into(),
        "{GLog(N3), N1} (2PC, src dead)".into(),
        "committed".into(),
        format!("{:?}", start.elapsed()),
    ]);
    // The recovered data survived the failover.
    let reads = c.user_txn(NodeId(1), TableId(0), &[4_900], &[]).unwrap();
    assert_eq!(reads[0], Some(Bytes::from_static(b"payload")));

    let start = Instant::now();
    c.delete_node(NodeId(1), NodeId(3)).unwrap();
    t.row(&[
        "DeleteNodeTxn(N3)".into(),
        "SysLog (1PC)".into(),
        "committed".into(),
        format!("{:?}", start.elapsed()),
    ]);

    let start = Instant::now();
    let entries = c.scan_gtable(NodeId(0)).unwrap();
    t.row(&[
        "ScanGTableTxn".into(),
        "SysLog + all nodes (read-only)".into(),
        format!("{} entries", entries.len()),
        format!("{:?}", start.elapsed()),
    ]);

    c.assert_invariants();
    print!("{}", t.render());
    println!("exclusive-granule-ownership invariant: OK");

    let mut bench =
        marlin_telemetry::BenchReport::new("table1_reconfig_txns", marlin_bench::scale());
    bench.sections.push(marlin_telemetry::BenchSection {
        name: "five_reconfig_txns/local-cluster".into(),
        wall_nanos: started.elapsed().as_nanos() as u64,
        ..Default::default()
    });
    bench.maybe_write();
}
