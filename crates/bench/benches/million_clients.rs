//! Million-client scale bench: the cohort engine vs the exact engine.
//!
//! Runs the `million_clients` preset (1 M closed-loop clients at scale 1)
//! end to end on the cohort engine, then probes the exact per-client
//! engine on the same cluster and workload to measure how many virtual
//! seconds each engine simulates per wall second. The exact probe runs a
//! *reduced* client count (construction and event cost are linear in
//! clients, and a million exact Zipf samplers alone would take hours), so
//! the probe's rate *over*states what exact could do at full scale — the
//! asserted speedup is a conservative lower bound.
//!
//! The bench is the CI perf gate for the scale engine: it asserts the
//! sustained client count, a flat virtual-per-wall floor, and a ≥10×
//! cohort-over-exact speedup, and records all of it in
//! `BENCH_million_clients.json` (`MARLIN_BENCH_JSON=<dir>`).

use std::time::{Duration, Instant};

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::ClientEngine;
use marlin_sim::SECOND;
use marlin_telemetry::{BenchReport, BenchSection};

/// Exact-engine probe size: enough clients for a stable event-loop rate,
/// few enough that Zipf-sampler construction stays in seconds.
const EXACT_PROBE_CLIENTS: u64 = 2_000;
/// Wall budget for the exact probe; its rate is measured, not its total.
const EXACT_PROBE_WALL: Duration = Duration::from_millis(1_500);
/// Flat floor on the cohort engine's virtual-seconds-per-wall-second —
/// far below the ~3,000× seen on a laptop, high enough to catch an
/// accidental return to per-client cost.
const MIN_VIRTUAL_PER_WALL: f64 = 25.0;

fn main() {
    // Clamp so the preset stays above both scale-engine activation
    // thresholds even under aggressive MARLIN_SCALE shrinks: clients
    // (1M/s) >= 10_000 needs s <= 100, and sketched granules
    // (200k/s) >= 4_096 needs s <= 48.
    let s = scale().min(40);
    let started = Instant::now();
    banner(
        "Million clients — cohort scale engine vs exact per-client engine",
        "flow-level cohorts + sketched heat sustain 1M clients at >=10x the exact engine's rate",
    );

    // -- the cohort run: the preset, end to end through the controller.
    let scenario = Scenario::million_clients(s);
    let horizon = scenario.horizon;
    let expected_clients = u64::from(scenario.trace.peak());
    let mut runner = SimRunner::new(&scenario);
    assert!(
        runner.sim().cohort_active(),
        "million_clients must activate the cohort engine"
    );
    assert!(
        runner.sim().heat_sketched(),
        "million_clients must sketch granule heat"
    );
    let wall = Instant::now();
    let report = run(scenario, &mut runner);
    let cohort_wall = wall.elapsed();
    let active = u64::from(runner.sim().active_clients());
    let cohort_vpw = horizon as f64 / cohort_wall.as_secs_f64() / SECOND as f64;
    println!(
        "cohort  {active:>9} clients  {:>11} commits  {:>8.2}s wall  {:>8.0} virt-s/wall-s",
        report.metrics.commits,
        cohort_wall.as_secs_f64(),
        cohort_vpw,
    );
    if let Some(step) = report
        .telemetry
        .as_ref()
        .and_then(|t| t.profile.phase("event:cohort_step"))
    {
        println!(
            "        cohort stepping: {} calls, {:.1}ms wall",
            step.calls,
            step.wall_nanos as f64 / 1e6
        );
    }

    // -- the exact probe: same cluster and workload, reduced client
    // count, advanced raw (no controller) until the wall budget runs out.
    let probe_clients = expected_clients.min(EXACT_PROBE_CLIENTS) as u32;
    let probe = Scenario::million_clients(s)
        .client_engine(ClientEngine::Exact)
        .trace(marlin_workload::LoadTrace::constant(probe_clients));
    let mut probe_runner = SimRunner::new(&probe);
    assert!(
        !probe_runner.sim().cohort_active(),
        "the probe must run the exact engine"
    );
    let wall = Instant::now();
    let chunk = SECOND / 10;
    let mut virt = 0;
    while wall.elapsed() < EXACT_PROBE_WALL && virt < horizon {
        virt += chunk;
        probe_runner.sim_mut().run_until(virt);
    }
    let exact_wall = wall.elapsed();
    let exact_vpw = virt as f64 / exact_wall.as_secs_f64() / SECOND as f64;
    println!(
        "exact   {probe_clients:>9} clients  {:>11} virt-s covered  {:>6.2}s wall  {:>8.1} virt-s/wall-s",
        virt / SECOND,
        exact_wall.as_secs_f64(),
        exact_vpw,
    );

    let speedup = cohort_vpw / exact_vpw.max(f64::MIN_POSITIVE);
    println!(
        "\ncohort speedup over exact: {speedup:.0}x (lower bound — the probe ran {}x fewer clients)",
        expected_clients / u64::from(probe_clients.max(1)),
    );

    // -- the perf-trajectory artifact, then the gates.
    let mut bench = BenchReport::new("million_clients", s);
    bench.sections.push(BenchSection {
        name: format!("{}/{}/cohort", report.scenario, report.backend),
        wall_nanos: cohort_wall.as_nanos() as u64,
        virtual_nanos: horizon,
        wall_bounded: false,
        profile: report.telemetry.as_ref().map(|t| t.profile.clone()),
        values: vec![
            ("active_clients".into(), active as f64),
            ("commits".into(), report.metrics.commits as f64),
            ("speedup_vs_exact".into(), speedup),
        ],
    });
    bench.sections.push(BenchSection {
        name: format!("{}/{}/exact-probe", report.scenario, report.backend),
        wall_nanos: exact_wall.as_nanos() as u64,
        virtual_nanos: virt,
        // The probe covers as much virtual time as its wall budget
        // allows: virt here is wall-dependent, only the rate is stable.
        wall_bounded: true,
        profile: None,
        values: vec![("probe_clients".into(), f64::from(probe_clients))],
    });
    bench.maybe_write();
    maybe_write_json(&[report]);
    println!("total wall {:.2}s", started.elapsed().as_secs_f64());

    assert_eq!(
        active, expected_clients,
        "the cohort engine must sustain the preset's full client count"
    );
    assert!(
        active >= 1_000_000 / s,
        "scale {s}: expected >={} active clients, got {active}",
        1_000_000 / s
    );
    assert!(
        cohort_vpw >= MIN_VIRTUAL_PER_WALL,
        "cohort engine too slow: {cohort_vpw:.1} virt-s/wall-s < floor {MIN_VIRTUAL_PER_WALL}"
    );
    assert!(
        speedup >= 10.0,
        "cohort engine must beat the exact engine >=10x, got {speedup:.1}x"
    );
    println!("gates passed: clients sustained, virtual-per-wall floor, >=10x over exact");
}
