//! Figure 8: MigrationTxn throughput over time (YCSB scale-out 8→16).
//!
//! Paper: "Marlin achieves 2.3× and 1.9× higher throughput for migration
//! transactions than S-ZK and L-ZK ... completes the scale-out process
//! 2.6× and 1.9× faster."

use marlin_bench::{banner, scale};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, render_rate_series, secs, Table};
use marlin_cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};

fn main() {
    banner(
        "Figure 8 — MigrationTxn throughput over time (YCSB, SO8-16)",
        "Marlin 2.3x/1.9x migration tput vs S-ZK/L-ZK; 2.6x/1.9x faster completion",
    );
    let mut results = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let spec = ScaleOutSpec::ycsb_so8_16(kind, scale());
        let sim = run_scale_out(&spec);
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("{} migrations/s", kind.name()),
                &sim.metrics.migrations,
                25
            )
        );
        results.push(summarize(&sim));
    }
    println!();
    let mut table = Table::new(&[
        "system",
        "migrations",
        "duration",
        "tput/s",
        "vs Marlin tput",
        "vs Marlin dur",
    ]);
    let marlin = results[0].clone();
    for r in &results {
        table.row(&[
            r.kind.name().into(),
            format!(
                "{}",
                (r.migration_throughput * (r.migration_duration as f64 / 1e9)) as u64
            ),
            secs(r.migration_duration),
            format!("{:.0}", r.migration_throughput),
            ratio(marlin.migration_throughput, r.migration_throughput),
            ratio(
                r.migration_duration as f64,
                marlin.migration_duration as f64,
            ),
        ]);
    }
    print!("{}", table.render());
}
