//! Figure 8: MigrationTxn throughput over time (YCSB scale-out 8→16).
//!
//! Paper: "Marlin achieves 2.3× and 1.9× higher throughput for migration
//! transactions than S-ZK and L-ZK ... completes the scale-out process
//! 2.6× and 1.9× faster."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{ratio, render_rate_series, secs, Table};

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 8 — MigrationTxn throughput over time (YCSB, SO8-16)",
        "Marlin 2.3x/1.9x migration tput vs S-ZK/L-ZK; 2.6x/1.9x faster completion",
    );
    let mut reports = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let scenario = Scenario::ycsb_scale_out(kind, scale());
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("{} migrations/s", kind.name()),
                &runner.sim().metrics.migrations,
                25
            )
        );
        reports.push(report);
    }
    println!();
    let mut table = Table::new(&[
        "system",
        "migrations",
        "duration",
        "tput/s",
        "vs Marlin tput",
        "vs Marlin dur",
    ]);
    let marlin = reports[0].metrics.clone();
    for r in &reports {
        let m = &r.metrics;
        table.row(&[
            r.backend.clone(),
            format!("{}", m.migrations),
            secs(m.migration_duration),
            format!("{:.0}", m.migration_throughput),
            ratio(marlin.migration_throughput, m.migration_throughput),
            ratio(
                m.migration_duration as f64,
                marlin.migration_duration as f64,
            ),
        ]);
    }
    print!("{}", table.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig08_migration_throughput", started, &reports);
}
