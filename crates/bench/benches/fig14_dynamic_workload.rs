//! Figure 14: real-time performance under a bursty workload
//! (400→800→400 clients, 8→16→8 nodes).
//!
//! Paper: "Marlin completes scale-out 2.6×/2.3× and scale-in 3.8×/2.6×
//! faster than S-ZK/L-ZK ... reduces compute nodes 12 seconds after the
//! workload drops, while S-ZK and L-ZK take 45 and 32 seconds."

use marlin_bench::{banner, scale};
use marlin_cluster::harness::{maybe_write_json, run, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_cluster::report::{render_rate_series, render_time_series, Table};
use marlin_sim::SECOND;

fn main() {
    let started = std::time::Instant::now();
    banner(
        "Figure 14 — dynamic workload (400→800→400 clients, 8→16→8 nodes)",
        "Marlin: fastest scale-out/in; releases nodes ~12s after load drop vs 45s/32s",
    );
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    for kind in CoordKind::zk_comparison() {
        let scenario = Scenario::dynamic_burst(kind, scale());
        let base_nodes = scenario.initial_nodes;
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        let sim = runner.sim();
        println!();
        print!(
            "{}",
            render_rate_series(
                &format!("(a) {} migrations/s", kind.name()),
                &sim.metrics.migrations,
                20
            )
        );
        print!(
            "{}",
            render_time_series(
                &format!("(b) {} cumulative cost $", kind.name()),
                &sim.cost_series,
                20
            )
        );
        print!(
            "{}",
            render_rate_series(
                &format!("(c) {} user tps", kind.name()),
                &sim.metrics.user_commits,
                20
            )
        );
        println!(
            "(d) {} committed txn latency: mean {:.1}ms p99 {:.1}ms",
            kind.name(),
            report.metrics.mean_latency / 1e6,
            report.metrics.p99_latency as f64 / 1e6
        );
        println!(
            "(e) {} abort ratio: overall {:.2}%, @25s {:.2}%",
            kind.name(),
            report.metrics.abort_ratio * 100.0,
            sim.metrics.abort_ratio_at(25 * SECOND) * 100.0
        );
        let lag = report.release_lag(base_nodes, 80 * SECOND);
        rows.push((
            kind.name().to_string(),
            lag,
            report.metrics.total_cost,
            report.metrics.commits,
        ));
        reports.push(report);
    }
    println!();
    let mut t = Table::new(&["system", "scale-in release lag", "total $", "commits"]);
    for (name, lag, cost, commits) in rows {
        t.row(&[
            name,
            lag.map_or("-".into(), |l| format!("{:.1}s", l as f64 / 1e9)),
            format!("{cost:.4}"),
            format!("{commits}"),
        ]);
    }
    print!("{}", t.render());
    maybe_write_json(&reports);
    marlin_bench::write_perf_trajectory("fig14_dynamic_workload", started, &reports);
}
