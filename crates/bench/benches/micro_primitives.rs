//! Criterion microbenchmarks of the core protocol primitives: the
//! conditional-append CAS, MarlinCommit driver stepping, the NO_WAIT lock
//! table, the clock cache, and GTable materialization.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use marlin_common::{GranuleId, KeyRange, LogId, Lsn, NodeId, PageId, TableId, TxnId};
use marlin_core::drivers::{CommitDriver, Input, Participant, Updates};
use marlin_core::records::{GRecord, OwnershipSwap};
use marlin_core::{GTablePartition, LsnTracker};
use marlin_engine::{ClockCache, LockMode, LockTable, LockTarget};
use marlin_storage::SharedLog;

fn bench_conditional_append(c: &mut Criterion) {
    c.bench_function("shared_log_conditional_append", |b| {
        let log = SharedLog::new();
        let mut lsn = Lsn::ZERO;
        b.iter(|| {
            let out = log
                .conditional_append(vec![Bytes::from_static(b"rec")], lsn)
                .unwrap();
            lsn = out.new_lsn;
        });
    });
    c.bench_function("shared_log_cas_failure", |b| {
        let log = SharedLog::new();
        log.append(vec![Bytes::from_static(b"r1"), Bytes::from_static(b"r2")]);
        b.iter(|| {
            log.conditional_append(vec![Bytes::from_static(b"x")], Lsn::ZERO)
                .unwrap_err()
        });
    });
}

fn swap(g: u64) -> OwnershipSwap {
    OwnershipSwap {
        table: TableId(0),
        granule: GranuleId(g),
        range: KeyRange::new(g * 10, (g + 1) * 10),
        old: NodeId(0),
        new: NodeId(1),
    }
}

fn bench_commit_driver(c: &mut Criterion) {
    c.bench_function("marlin_commit_1pc", |b| {
        let tracker = LsnTracker::new();
        b.iter(|| {
            let (mut d, _) = CommitDriver::new(
                TxnId(1),
                NodeId(0),
                vec![(
                    Participant::Node(NodeId(0)),
                    Updates::Granule(vec![swap(1)]),
                )],
                &tracker,
            );
            d.on_input(Input::AppendOk {
                log: LogId::GLog(NodeId(0)),
                new_lsn: Lsn(1),
            });
            assert!(d.is_done());
        });
    });
    c.bench_function("marlin_commit_2pc", |b| {
        let tracker = LsnTracker::new();
        b.iter(|| {
            let (mut d, _) = CommitDriver::new(
                TxnId(1),
                NodeId(1),
                vec![
                    (
                        Participant::Node(NodeId(0)),
                        Updates::Granule(vec![swap(1)]),
                    ),
                    (
                        Participant::Node(NodeId(1)),
                        Updates::Granule(vec![swap(1)]),
                    ),
                ],
                &tracker,
            );
            d.on_input(Input::AppendOk {
                log: LogId::GLog(NodeId(1)),
                new_lsn: Lsn(1),
            });
            d.on_input(Input::VoteResp {
                from: NodeId(0),
                yes: true,
            });
            assert!(d.is_done());
        });
    });
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_acquire_release", |b| {
        let lt = LockTable::new();
        let txn = TxnId(7);
        b.iter(|| {
            for k in 0..16u64 {
                lt.try_lock(
                    txn,
                    LockTarget::Row {
                        table: TableId(0),
                        key: k,
                    },
                    LockMode::Exclusive,
                )
                .unwrap();
            }
            lt.release_all(txn);
        });
    });
}

fn bench_clock_cache(c: &mut Criterion) {
    c.bench_function("clock_cache_access_hit", |b| {
        let mut cache = ClockCache::new(1024);
        for i in 0..1024u32 {
            cache.insert(
                PageId {
                    table: TableId(0),
                    granule: GranuleId(0),
                    index: i,
                },
                None,
            );
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1024;
            cache.access(PageId {
                table: TableId(0),
                granule: GranuleId(0),
                index: i,
            })
        });
    });
}

fn bench_gtable_apply(c: &mut Criterion) {
    c.bench_function("gtable_apply_swap", |b| {
        b.iter_batched(
            GTablePartition::new,
            |mut p| {
                for i in 0..64u64 {
                    p.apply(
                        Lsn(i + 1),
                        &GRecord::OnePhase {
                            txn: TxnId(i),
                            swaps: vec![swap(i)],
                        },
                    );
                }
                p
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_conditional_append,
    bench_commit_driver,
    bench_lock_table,
    bench_clock_cache,
    bench_gtable_apply
);
criterion_main!(benches);
