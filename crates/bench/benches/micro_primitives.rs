//! Criterion microbenchmarks of the core protocol primitives: the
//! conditional-append CAS, MarlinCommit driver stepping, the NO_WAIT lock
//! table, the clock cache, and GTable materialization — plus the
//! telemetry overhead guard: disabled instrumentation must cost <2% of a
//! run and leave decision logs bit-identical.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use marlin_cluster::harness::{run, RunReport, Scenario, SimRunner};
use marlin_cluster::params::CoordKind;
use marlin_common::{GranuleId, KeyRange, LogId, Lsn, NodeId, PageId, TableId, TxnId};
use marlin_core::drivers::{CommitDriver, Input, Participant, Updates};
use marlin_core::records::{GRecord, OwnershipSwap};
use marlin_core::{GTablePartition, LsnTracker};
use marlin_engine::{ClockCache, LockMode, LockTable, LockTarget};
use marlin_storage::SharedLog;
use marlin_telemetry::{BenchReport, BenchSection, Profiler, Tracer, DEFAULT_TRACE_CAPACITY};
use std::time::Instant;

fn bench_conditional_append(c: &mut Criterion) {
    c.bench_function("shared_log_conditional_append", |b| {
        let log = SharedLog::new();
        let mut lsn = Lsn::ZERO;
        b.iter(|| {
            let out = log
                .conditional_append(vec![Bytes::from_static(b"rec")], lsn)
                .unwrap();
            lsn = out.new_lsn;
        });
    });
    c.bench_function("shared_log_cas_failure", |b| {
        let log = SharedLog::new();
        log.append(vec![Bytes::from_static(b"r1"), Bytes::from_static(b"r2")]);
        b.iter(|| {
            log.conditional_append(vec![Bytes::from_static(b"x")], Lsn::ZERO)
                .unwrap_err()
        });
    });
}

fn swap(g: u64) -> OwnershipSwap {
    OwnershipSwap {
        table: TableId(0),
        granule: GranuleId(g),
        range: KeyRange::new(g * 10, (g + 1) * 10),
        old: NodeId(0),
        new: NodeId(1),
    }
}

fn bench_commit_driver(c: &mut Criterion) {
    c.bench_function("marlin_commit_1pc", |b| {
        let tracker = LsnTracker::new();
        b.iter(|| {
            let (mut d, _) = CommitDriver::new(
                TxnId(1),
                NodeId(0),
                vec![(
                    Participant::Node(NodeId(0)),
                    Updates::Granule(vec![swap(1)]),
                )],
                &tracker,
            );
            d.on_input(Input::AppendOk {
                log: LogId::GLog(NodeId(0)),
                new_lsn: Lsn(1),
            });
            assert!(d.is_done());
        });
    });
    c.bench_function("marlin_commit_2pc", |b| {
        let tracker = LsnTracker::new();
        b.iter(|| {
            let (mut d, _) = CommitDriver::new(
                TxnId(1),
                NodeId(1),
                vec![
                    (
                        Participant::Node(NodeId(0)),
                        Updates::Granule(vec![swap(1)]),
                    ),
                    (
                        Participant::Node(NodeId(1)),
                        Updates::Granule(vec![swap(1)]),
                    ),
                ],
                &tracker,
            );
            d.on_input(Input::AppendOk {
                log: LogId::GLog(NodeId(1)),
                new_lsn: Lsn(1),
            });
            d.on_input(Input::VoteResp {
                from: NodeId(0),
                yes: true,
            });
            assert!(d.is_done());
        });
    });
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_acquire_release", |b| {
        let lt = LockTable::new();
        let txn = TxnId(7);
        b.iter(|| {
            for k in 0..16u64 {
                lt.try_lock(
                    txn,
                    LockTarget::Row {
                        table: TableId(0),
                        key: k,
                    },
                    LockMode::Exclusive,
                )
                .unwrap();
            }
            lt.release_all(txn);
        });
    });
}

fn bench_clock_cache(c: &mut Criterion) {
    c.bench_function("clock_cache_access_hit", |b| {
        let mut cache = ClockCache::new(1024);
        for i in 0..1024u32 {
            cache.insert(
                PageId {
                    table: TableId(0),
                    granule: GranuleId(0),
                    index: i,
                },
                None,
            );
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1024;
            cache.access(PageId {
                table: TableId(0),
                granule: GranuleId(0),
                index: i,
            })
        });
    });
}

fn bench_gtable_apply(c: &mut Criterion) {
    c.bench_function("gtable_apply_swap", |b| {
        b.iter_batched(
            GTablePartition::new,
            |mut p| {
                for i in 0..64u64 {
                    p.apply(
                        Lsn(i + 1),
                        &GRecord::OnePhase {
                            txn: TxnId(i),
                            swaps: vec![swap(i)],
                        },
                    );
                }
                p
            },
            BatchSize::SmallInput,
        );
    });
}

/// The scenario the overhead guard measures: a short Marlin autoscale
/// spike at 1/100 granule scale — enough event traffic to be meaningful,
/// small enough to repeat.
fn guard_scenario() -> Scenario {
    Scenario::autoscale_spike(CoordKind::Marlin, 100)
}

/// `report.to_json()` with the host-dependent parts stripped: actuation
/// wall times zeroed and the telemetry section dropped, leaving exactly
/// the deterministic decision-log surface.
fn stripped_json(mut report: RunReport) -> String {
    for r in &mut report.log {
        r.actuation_micros = 0;
    }
    report.telemetry = None;
    report.to_json()
}

fn timed_run(enable_telemetry: bool) -> (u64, RunReport) {
    let scenario = guard_scenario();
    let mut runner = SimRunner::new(&scenario);
    if enable_telemetry {
        runner.sim_mut().enable_tracing(DEFAULT_TRACE_CAPACITY);
        runner.sim_mut().enable_profiling();
    }
    let start = Instant::now();
    let report = run(scenario, &mut runner);
    (start.elapsed().as_nanos() as u64, report)
}

/// The telemetry overhead guard (not a criterion timing loop — it pins a
/// ratio and a bit-identical decision log, so it asserts instead of
/// sampling).
///
/// The disabled-telemetry hot path costs one branch per instrumentation
/// point. The guard measures that branch cost directly on disabled
/// instruments, scales it by the run's dispatched-event count, and pins
/// the total under 2% of the run's wall time — the "disabled telemetry
/// is free" contract, measured rather than asserted by construction.
fn telemetry_overhead(_c: &mut Criterion) {
    // Decision-log parity: two telemetry-off runs and one telemetry-on
    // run must produce byte-identical deterministic surfaces.
    let (_, off_a) = timed_run(false);
    let (_, off_b) = timed_run(false);
    let (_, on) = timed_run(true);
    let events = on.telemetry.as_ref().map_or(0, |t| t.profile.events);
    let off_json = stripped_json(off_a);
    assert_eq!(
        off_json,
        stripped_json(off_b),
        "telemetry-off runs must be bit-identical"
    );
    assert_eq!(
        off_json,
        stripped_json(on),
        "enabling telemetry must not perturb the decision log"
    );

    // Per-point cost of the disabled instruments (the real hot path:
    // Profiler::start / record and Tracer::is_enabled per dispatch).
    let profiler = Profiler::disabled();
    let tracer = Tracer::disabled();
    let probe_iters: u64 = 4_000_000;
    let probe = Instant::now();
    let mut sink = 0u64;
    for _ in 0..probe_iters {
        let t0 = profiler.start();
        sink += u64::from(t0.is_none());
        sink += u64::from(tracer.is_enabled());
    }
    let per_point = probe.elapsed().as_nanos() as f64 / probe_iters as f64;
    assert!(sink >= probe_iters, "keep the probe loop observable");

    // Min-of-N wall time of the real telemetry-off run.
    let t_off = (0..3).map(|_| timed_run(false).0).min().unwrap_or(1).max(1);
    // Roughly two instrumentation points per dispatched event (prologue
    // + epilogue), and events dominate the instrumented surface.
    let overhead_ns = per_point * 2.0 * events as f64;
    let overhead_pct = overhead_ns / t_off as f64 * 100.0;
    println!(
        "telemetry-off overhead: {overhead_pct:.4}% \
         ({events} events x {per_point:.2} ns/point over {t_off} ns)"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled telemetry must stay under 2% of run wall time \
         (measured {overhead_pct:.4}%)"
    );

    let mut bench = BenchReport::new("micro_primitives", marlin_bench::scale());
    bench.sections.push(BenchSection {
        name: "telemetry_overhead_guard".into(),
        wall_nanos: t_off,
        virtual_nanos: guard_scenario().horizon,
        wall_bounded: false,
        profile: None,
        values: vec![
            ("overhead_pct".into(), overhead_pct),
            ("events".into(), events as f64),
            ("ns_per_disabled_point".into(), per_point),
        ],
    });
    bench.maybe_write();
}

criterion_group!(
    benches,
    bench_conditional_append,
    bench_commit_driver,
    bench_lock_table,
    bench_clock_cache,
    bench_gtable_apply,
    telemetry_overhead
);
criterion_main!(benches);
