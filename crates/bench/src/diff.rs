//! The noise-aware perf-regression comparator behind the `bench-diff`
//! binary.
//!
//! Two `BENCH_*.json` trees (typically the committed `bench/baseline/`
//! and a fresh `MARLIN_BENCH_JSON` output directory) are compared
//! target by target under a split discipline:
//!
//! - **Deterministic fields gate exactly.** `scale`, the section list,
//!   each section's `virtual_ns`, and the deterministic result values
//!   ([`DETERMINISTIC_VALUES`]: commits, meta cost, coordination ops,
//!   client counts) are pure functions of (scenario, seed, scale) — any
//!   drift is a behavior change, not noise, and fails the diff until the
//!   baseline is refreshed deliberately.
//! - **Wall-clock fields gate with noise headroom.** Wall times come
//!   from shared CI runners; the comparator takes the *min over N*
//!   current trees (pass several run directories for min-of-N), reports
//!   the ratio, and only hard-fails when virtual-seconds-per-wall-second
//!   collapses below `baseline / `[`DEFAULT_VPW_FLOOR_DIV`] — an
//!   order-of-magnitude floor that survives runner variance but catches
//!   an accidental return to per-client cost. An optional relative wall
//!   tolerance can be armed on top.
//!
//! The comparator also aggregates the current tree's per-target files
//! into one `BENCH_TRAJECTORY.json` ([`write_trajectory`]) so a single
//! artifact carries the whole run's perf trajectory.
//!
//! Everything here is `Result`-based: the binary owns process exit.

use marlin_telemetry::{json_escape, json_f64};
use std::fmt::Write as _;
use std::path::Path;

/// Result values that are pure functions of (scenario, seed, scale) and
/// therefore gate with exact equality. Anything else under `values`
/// (wall-derived speedups, rates) is reported but never gated.
pub const DETERMINISTIC_VALUES: [&str; 5] = [
    "commits",
    "meta_cost",
    "coord_ops_total",
    "active_clients",
    "probe_clients",
];

/// Default divisor for the virtual-per-wall hard floor: the current run
/// fails when its best section rate drops below `baseline / 8`.
pub const DEFAULT_VPW_FLOOR_DIV: f64 = 8.0;

// ---------------------------------------------------------------------------
// A minimal JSON reader for the hand-rolled BENCH artifacts (offline
// build: no serde). Only what the artifact grammar uses.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the artifacts stay within f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > 64 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let span = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        span.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{span}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
                        let code = end
                            .and_then(|e| std::str::from_utf8(&self.bytes[self.pos..e]).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| self.err("invalid \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte sequence in place.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start
                        .checked_add(len)
                        .filter(|&e| e <= self.bytes.len())
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value(0)?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing garbage"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// The artifact model the comparator works on.

/// One section of a parsed `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct SectionDoc {
    /// Section label (scenario/backend/runner).
    pub name: String,
    /// Measured wall nanoseconds.
    pub wall_ns: u64,
    /// Simulated virtual nanoseconds (deterministic unless the section
    /// is `wall_bounded`).
    pub virtual_ns: u64,
    /// The section ran under a wall-clock budget: `virtual_ns` is
    /// wall-dependent, so only its *rate* is comparable.
    pub wall_bounded: bool,
    /// Free-form result values, in artifact order.
    pub values: Vec<(String, f64)>,
}

impl SectionDoc {
    /// Virtual-seconds simulated per wall-second.
    #[must_use]
    pub fn virtual_per_wall(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.virtual_ns as f64 / self.wall_ns as f64
        }
    }

    fn value(&self, key: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One parsed `BENCH_<target>.json`.
#[derive(Clone, Debug)]
pub struct BenchDoc {
    /// Bench target name.
    pub target: String,
    /// The `MARLIN_SCALE` the run used (deterministic).
    pub scale: u64,
    /// Sections in run order.
    pub sections: Vec<SectionDoc>,
}

/// Parse a `BENCH_*.json` artifact into the comparator's model.
pub fn parse_bench_doc(text: &str) -> Result<BenchDoc, String> {
    let root = parse_json(text)?;
    let target = root
        .get("target")
        .and_then(Json::as_str)
        .ok_or("missing string field 'target'")?
        .to_string();
    let scale = root
        .get("scale")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field 'scale'")? as u64;
    let sections = match root.get("sections") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing array field 'sections'".into()),
    };
    let mut out = Vec::with_capacity(sections.len());
    for s in sections {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or("section missing 'name'")?
            .to_string();
        let wall_ns =
            s.get("wall_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("section '{name}' missing 'wall_ns'"))? as u64;
        let virtual_ns = s
            .get("virtual_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("section '{name}' missing 'virtual_ns'"))?
            as u64;
        let wall_bounded = matches!(s.get("wall_bounded"), Some(Json::Bool(true)));
        let mut values = Vec::new();
        if let Some(Json::Obj(members)) = s.get("values") {
            for (k, v) in members {
                values.push((
                    k.clone(),
                    v.as_f64()
                        .ok_or_else(|| format!("section '{name}' value '{k}' not a number"))?,
                ));
            }
        }
        out.push(SectionDoc {
            name,
            wall_ns,
            virtual_ns,
            wall_bounded,
            values,
        });
    }
    Ok(BenchDoc {
        target,
        scale,
        sections: out,
    })
}

/// Load every `BENCH_*.json` under `dir`, sorted by target name. The
/// raw text rides along for trajectory aggregation.
pub fn load_dir(dir: &Path) -> Result<Vec<(BenchDoc, String)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut docs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        // Per-target artifacts only — never a previously aggregated
        // trajectory living in the same directory.
        if !name.starts_with("BENCH_")
            || !name.ends_with(".json")
            || name == "BENCH_TRAJECTORY.json"
        {
            continue;
        }
        let path = entry.path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = parse_bench_doc(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        docs.push((doc, text));
    }
    docs.sort_by(|a, b| a.0.target.cmp(&b.0.target));
    Ok(docs)
}

// ---------------------------------------------------------------------------
// The verdict.

/// Outcome of one check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckStatus {
    /// The gate holds.
    Pass,
    /// The gate is broken — the diff fails.
    Fail,
    /// Reported for the record, never gated.
    Info,
}

impl CheckStatus {
    fn name(self) -> &'static str {
        match self {
            CheckStatus::Pass => "pass",
            CheckStatus::Fail => "fail",
            CheckStatus::Info => "info",
        }
    }
}

/// One comparison check on one target/section.
#[derive(Clone, Debug)]
pub struct Check {
    /// Bench target the check ran on.
    pub target: String,
    /// Section label, or empty for target-level checks.
    pub section: String,
    /// Check name (`scale`, `virtual_ns`, `value:commits`, ...).
    pub name: String,
    /// Pass/fail/info.
    pub status: CheckStatus,
    /// Human-readable evidence.
    pub detail: String,
}

/// The full comparison verdict.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Every check, in target order.
    pub checks: Vec<Check>,
}

impl Verdict {
    /// Whether every gated check passed.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.status != CheckStatus::Fail)
    }

    /// Count of failed checks.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.checks
            .iter()
            .filter(|c| c.status == CheckStatus::Fail)
            .count()
    }

    /// Serialize the verdict (hand-rolled; no serde in the offline
    /// build): `{"status":...,"failures":N,"checks":[...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.checks.len());
        let _ = write!(
            out,
            "{{\"status\":\"{}\",\"failures\":{},\"checks\":[",
            if self.pass() { "pass" } else { "fail" },
            self.failures()
        );
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"target\":{},\"section\":{},\"check\":{},\"status\":\"{}\",\"detail\":{}}}",
                json_escape(&c.target),
                json_escape(&c.section),
                json_escape(&c.name),
                c.status.name(),
                json_escape(&c.detail)
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// Comparator knobs.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Relative wall-time tolerance in percent; `None` (the default)
    /// reports wall ratios without gating them — shared-runner noise
    /// makes raw wall time a bad hard gate.
    pub wall_tol_pct: Option<f64>,
    /// Divisor for the virtual-per-wall hard floor.
    pub vpw_floor_div: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            wall_tol_pct: None,
            vpw_floor_div: DEFAULT_VPW_FLOOR_DIV,
        }
    }
}

fn check(
    checks: &mut Vec<Check>,
    target: &str,
    section: &str,
    name: &str,
    status: CheckStatus,
    detail: String,
) {
    checks.push(Check {
        target: target.to_string(),
        section: section.to_string(),
        name: name.to_string(),
        status,
        detail,
    });
}

const REFRESH: &str = "deterministic output drifted — a behavior change, not noise; if \
                       intended, refresh bench/baseline (see docs/OBSERVABILITY.md)";

/// Compare a baseline tree against N current trees (min-of-N wall
/// discipline) entirely in memory. Each element of `currents` is one
/// run's parsed documents.
#[must_use]
pub fn diff_docs(baseline: &[BenchDoc], currents: &[Vec<BenchDoc>], cfg: &DiffConfig) -> Verdict {
    let mut checks = Vec::new();
    for base in baseline {
        let t = &base.target;
        let copies: Vec<&BenchDoc> = currents
            .iter()
            .filter_map(|run| run.iter().find(|d| d.target == *t))
            .collect();
        if copies.is_empty() {
            check(
                &mut checks,
                t,
                "",
                "present",
                CheckStatus::Fail,
                format!("BENCH_{t}.json missing from the current tree — run the bench target"),
            );
            continue;
        }
        for cur in &copies {
            if cur.scale != base.scale {
                check(
                    &mut checks,
                    t,
                    "",
                    "scale",
                    CheckStatus::Fail,
                    format!(
                        "baseline ran MARLIN_SCALE={}, current ran {} — rerun at the \
                         baseline scale or refresh the baseline",
                        base.scale, cur.scale
                    ),
                );
            }
            let names = |d: &BenchDoc| -> Vec<String> {
                d.sections.iter().map(|s| s.name.clone()).collect()
            };
            if names(cur) != names(base) {
                check(
                    &mut checks,
                    t,
                    "",
                    "sections",
                    CheckStatus::Fail,
                    format!(
                        "section list drifted (baseline {:?}, current {:?}) — {REFRESH}",
                        names(base),
                        names(cur)
                    ),
                );
            }
        }
        if checks
            .iter()
            .any(|c| c.target == *t && c.status == CheckStatus::Fail)
        {
            continue; // structure broken: per-section checks would lie
        }
        for (idx, bs) in base.sections.iter().enumerate() {
            let sec = &bs.name;
            let cur_secs: Vec<&SectionDoc> =
                copies.iter().filter_map(|d| d.sections.get(idx)).collect();
            // Deterministic: virtual_ns and the deterministic values
            // must match exactly in every current copy. Wall-bounded
            // probe sections cover as much virtual time as their wall
            // budget allowed — there only the rate below is comparable.
            let wall_bounded = bs.wall_bounded || cur_secs.iter().any(|s| s.wall_bounded);
            for cs in &cur_secs {
                if !wall_bounded && cs.virtual_ns != bs.virtual_ns {
                    check(
                        &mut checks,
                        t,
                        sec,
                        "virtual_ns",
                        CheckStatus::Fail,
                        format!(
                            "baseline simulated {} ns, current {} ns — {REFRESH}",
                            bs.virtual_ns, cs.virtual_ns
                        ),
                    );
                }
                for key in DETERMINISTIC_VALUES {
                    let Some(want) = bs.value(key) else { continue };
                    match cs.value(key) {
                        Some(got) if got == want => {}
                        Some(got) => check(
                            &mut checks,
                            t,
                            sec,
                            &format!("value:{key}"),
                            CheckStatus::Fail,
                            format!(
                                "baseline {key}={}, current {} — {REFRESH}",
                                json_f64(want),
                                json_f64(got)
                            ),
                        ),
                        None => check(
                            &mut checks,
                            t,
                            sec,
                            &format!("value:{key}"),
                            CheckStatus::Fail,
                            format!("baseline records {key}, current dropped it — {REFRESH}"),
                        ),
                    }
                }
            }
            if checks
                .iter()
                .any(|c| c.target == *t && c.section == *sec && c.status == CheckStatus::Fail)
            {
                continue;
            }
            check(
                &mut checks,
                t,
                sec,
                "deterministic",
                CheckStatus::Pass,
                "virtual_ns and deterministic values match the baseline".into(),
            );
            // Noise-aware: min-of-N wall, best-of-N virtual-per-wall.
            let min_wall = cur_secs.iter().map(|s| s.wall_ns).min().unwrap_or(0);
            let best_vpw = cur_secs
                .iter()
                .map(|s| s.virtual_per_wall())
                .fold(0.0_f64, f64::max);
            let base_vpw = bs.virtual_per_wall();
            if bs.wall_ns > 0 && min_wall > 0 {
                let ratio = min_wall as f64 / bs.wall_ns as f64;
                let (status, gate) = match cfg.wall_tol_pct {
                    Some(tol) if ratio > 1.0 + tol / 100.0 => {
                        (CheckStatus::Fail, format!(" > {tol}% tolerance"))
                    }
                    Some(tol) => (CheckStatus::Pass, format!(" within {tol}% tolerance")),
                    None => (CheckStatus::Info, String::new()),
                };
                check(
                    &mut checks,
                    t,
                    sec,
                    "wall",
                    status,
                    format!(
                        "min-of-{} wall {:.3}s vs baseline {:.3}s ({:.2}x){gate}",
                        cur_secs.len(),
                        min_wall as f64 / 1e9,
                        bs.wall_ns as f64 / 1e9,
                        ratio
                    ),
                );
            }
            if base_vpw > 0.0 && bs.virtual_ns > 0 {
                let floor = base_vpw / cfg.vpw_floor_div;
                let status = if best_vpw >= floor {
                    CheckStatus::Pass
                } else {
                    CheckStatus::Fail
                };
                check(
                    &mut checks,
                    t,
                    sec,
                    "virtual_per_wall",
                    status,
                    format!(
                        "best-of-{} {:.1} virt-s/wall-s vs floor {:.1} (baseline {:.1} / {})",
                        cur_secs.len(),
                        best_vpw,
                        floor,
                        base_vpw,
                        cfg.vpw_floor_div
                    ),
                );
            }
        }
    }
    // Targets only the current trees know about: informational — commit
    // a refreshed baseline to start gating them.
    for run in currents {
        for d in run {
            let known = baseline.iter().any(|b| b.target == d.target)
                || checks
                    .iter()
                    .any(|c| c.target == d.target && c.name == "new-target");
            if !known {
                check(
                    &mut checks,
                    &d.target,
                    "",
                    "new-target",
                    CheckStatus::Info,
                    "not in the baseline — refresh bench/baseline to gate it".into(),
                );
            }
        }
    }
    Verdict { checks }
}

/// Compare the committed baseline directory against one or more current
/// run directories (min-of-N wall discipline across them).
pub fn diff_dirs(baseline: &Path, currents: &[&Path], cfg: &DiffConfig) -> Result<Verdict, String> {
    let base: Vec<BenchDoc> = load_dir(baseline)?.into_iter().map(|(d, _)| d).collect();
    if base.is_empty() {
        return Err(format!(
            "no BENCH_*.json under {} — nothing to gate against",
            baseline.display()
        ));
    }
    let mut runs = Vec::with_capacity(currents.len());
    for dir in currents {
        runs.push(load_dir(dir)?.into_iter().map(|(d, _)| d).collect());
    }
    Ok(diff_docs(&base, &runs, cfg))
}

/// Aggregate every `BENCH_*.json` under `dir` into one
/// `BENCH_TRAJECTORY.json` document at `out`, sorted by target:
/// `{"targets":[<each artifact verbatim>]}`. Returns the number of
/// targets aggregated.
pub fn write_trajectory(dir: &Path, out: &Path) -> Result<usize, String> {
    let docs = load_dir(dir)?;
    let mut body = String::with_capacity(docs.iter().map(|(_, t)| t.len() + 2).sum::<usize>() + 32);
    body.push_str("{\"targets\":[");
    for (i, (_, raw)) in docs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(raw.trim_end());
    }
    body.push_str("]}\n");
    std::fs::write(out, body).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    Ok(docs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_telemetry::{BenchReport, BenchSection};

    fn doc(target: &str, wall: u64, virt: u64, commits: f64) -> BenchDoc {
        let mut r = BenchReport::new(target, 10);
        r.sections.push(BenchSection {
            name: "scenario/marlin/sim".into(),
            wall_nanos: wall,
            virtual_nanos: virt,
            wall_bounded: false,
            profile: None,
            values: vec![
                ("commits".into(), commits),
                ("speedup_vs_exact".into(), 123.4),
            ],
        });
        parse_bench_doc(&r.to_json()).expect("round trip")
    }

    #[test]
    fn parser_round_trips_the_emitters_output() {
        let d = doc("million_clients", 2_000_000_000, 60_000_000_000, 81_000.0);
        assert_eq!(d.target, "million_clients");
        assert_eq!(d.scale, 10);
        assert_eq!(d.sections.len(), 1);
        assert_eq!(d.sections[0].virtual_ns, 60_000_000_000);
        assert_eq!(d.sections[0].value("commits"), Some(81_000.0));
        assert_eq!(d.sections[0].value("speedup_vs_exact"), Some(123.4));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_bench_doc("{\"scale\":1,\"sections\":[]}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse_json("{\"a\":\"q\\\"\\\\\\n\\u0041é\"}").expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("q\"\\\nAé"));
    }

    #[test]
    fn identical_trees_pass_and_wall_noise_is_not_gated() {
        let base = vec![doc("t", 1_000, 60_000, 500.0)];
        // 3x slower wall: reported, not gated.
        let cur = vec![vec![doc("t", 3_000, 60_000, 500.0)]];
        let v = diff_docs(&base, &cur, &DiffConfig::default());
        assert!(v.pass(), "{:?}", v.checks);
        assert!(v
            .checks
            .iter()
            .any(|c| c.name == "wall" && c.status == CheckStatus::Info));
    }

    #[test]
    fn deterministic_drift_fails_the_diff() {
        let base = vec![doc("t", 1_000, 60_000, 500.0)];
        let cur = vec![vec![doc("t", 1_000, 60_000, 501.0)]];
        let v = diff_docs(&base, &cur, &DiffConfig::default());
        assert!(!v.pass());
        assert!(v
            .checks
            .iter()
            .any(|c| c.name == "value:commits" && c.status == CheckStatus::Fail));
        // Wall-derived values never gate.
        assert!(!v.checks.iter().any(|c| c.name == "value:speedup_vs_exact"));
    }

    #[test]
    fn virtual_per_wall_collapse_hard_fails() {
        let base = vec![doc("t", 1_000, 60_000, 500.0)];
        // 60x slower: past the /8 floor even after noise headroom.
        let cur = vec![vec![doc("t", 60_000, 60_000, 500.0)]];
        let v = diff_docs(&base, &cur, &DiffConfig::default());
        assert!(!v.pass());
        assert!(v
            .checks
            .iter()
            .any(|c| c.name == "virtual_per_wall" && c.status == CheckStatus::Fail));
    }

    #[test]
    fn wall_bounded_sections_gate_rate_not_virtual_total() {
        let mk = |wall: u64, virt: u64| {
            let mut r = BenchReport::new("probe", 10);
            r.sections.push(BenchSection {
                name: "exact-probe".into(),
                wall_nanos: wall,
                virtual_nanos: virt,
                wall_bounded: true,
                profile: None,
                values: vec![("probe_clients".into(), 2_000.0)],
            });
            parse_bench_doc(&r.to_json()).expect("round trip")
        };
        let base = vec![mk(1_000, 40_000)];
        // Different virtual coverage at a similar rate: the wall budget
        // decided the total, so the diff must pass.
        let v = diff_docs(&base, &[vec![mk(1_100, 36_000)]], &DiffConfig::default());
        assert!(v.pass(), "{:?}", v.checks);
        // A collapsed rate still hard-fails.
        let v = diff_docs(&base, &[vec![mk(10_000, 40_000)]], &DiffConfig::default());
        assert!(!v.pass());
    }

    #[test]
    fn min_of_n_takes_the_best_current_run() {
        let base = vec![doc("t", 1_000, 60_000, 500.0)];
        // One noisy run past the floor, one healthy run: min-of-N passes.
        let cur = vec![
            vec![doc("t", 60_000, 60_000, 500.0)],
            vec![doc("t", 1_100, 60_000, 500.0)],
        ];
        let v = diff_docs(&base, &cur, &DiffConfig::default());
        assert!(v.pass(), "{:?}", v.checks);
    }

    #[test]
    fn missing_target_fails_and_new_target_informs() {
        let base = vec![doc("gone", 1_000, 60_000, 1.0)];
        let cur = vec![vec![doc("fresh", 1_000, 60_000, 1.0)]];
        let v = diff_docs(&base, &cur, &DiffConfig::default());
        assert!(!v.pass());
        assert!(v.checks.iter().any(|c| c.name == "present"));
        assert!(v
            .checks
            .iter()
            .any(|c| c.name == "new-target" && c.status == CheckStatus::Info));
    }

    #[test]
    fn armed_wall_tolerance_gates() {
        let base = vec![doc("t", 1_000, 60_000, 500.0)];
        let cur = vec![vec![doc("t", 3_000, 60_000, 500.0)]];
        let cfg = DiffConfig {
            wall_tol_pct: Some(50.0),
            ..DiffConfig::default()
        };
        let v = diff_docs(&base, &cur, &cfg);
        assert!(!v.pass());
        assert!(v
            .checks
            .iter()
            .any(|c| c.name == "wall" && c.status == CheckStatus::Fail));
    }

    #[test]
    fn verdict_json_is_wellformed() {
        let base = vec![doc("t", 1_000, 60_000, 500.0)];
        let v = diff_docs(
            &base,
            &[vec![doc("t", 1_000, 60_000, 501.0)]],
            &DiffConfig::default(),
        );
        let j = v.to_json();
        assert!(j.starts_with("{\"status\":\"fail\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(parse_json(&j).is_ok(), "verdict must itself parse");
    }
}
