//! `bench-diff`: compare `BENCH_*.json` perf-trajectory trees with
//! noise-aware thresholds and gate CI on the verdict.
//!
//! ```text
//! bench-diff <baseline-dir> <current-dir>... [--out <verdict.json>]
//!            [--trajectory <path>] [--wall-tol <pct>] [--vpw-floor-div <f>]
//! ```
//!
//! Deterministic fields (scale, sections, virtual time, commit counts)
//! must match the baseline exactly; wall-clock fields are compared
//! min-of-N across the current directories and only hard-fail when
//! virtual-seconds-per-wall-second collapses below `baseline / 8`.
//! Exit status: 0 = pass, 1 = regression, 2 = usage or I/O error.
//! The baseline-refresh workflow lives in docs/OBSERVABILITY.md.

use marlin_bench::diff::{diff_dirs, write_trajectory, CheckStatus, DiffConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: bench-diff <baseline-dir> <current-dir>... \
                     [--out <verdict.json>] [--trajectory <path>] \
                     [--wall-tol <pct>] [--vpw-floor-div <f>]";

struct Args {
    baseline: PathBuf,
    currents: Vec<PathBuf>,
    out: Option<PathBuf>,
    trajectory: Option<PathBuf>,
    cfg: DiffConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut out = None;
    let mut trajectory = None;
    let mut cfg = DiffConfig::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(flag_value("--out")?)),
            "--trajectory" => trajectory = Some(PathBuf::from(flag_value("--trajectory")?)),
            "--wall-tol" => {
                let v = flag_value("--wall-tol")?;
                cfg.wall_tol_pct = Some(
                    v.parse::<f64>()
                        .map_err(|_| format!("--wall-tol: invalid percentage '{v}'"))?,
                );
            }
            "--vpw-floor-div" => {
                let v = flag_value("--vpw-floor-div")?;
                cfg.vpw_floor_div = v
                    .parse::<f64>()
                    .ok()
                    .filter(|f| *f >= 1.0)
                    .ok_or_else(|| format!("--vpw-floor-div: invalid divisor '{v}'"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}\n{USAGE}"));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.len() < 2 {
        return Err(format!(
            "need a baseline and at least one current dir\n{USAGE}"
        ));
    }
    let baseline = dirs.remove(0);
    Ok(Args {
        baseline,
        currents: dirs,
        out,
        trajectory,
        cfg,
    })
}

fn run(args: &Args) -> Result<bool, String> {
    let started = Instant::now();
    let currents: Vec<&std::path::Path> = args.currents.iter().map(PathBuf::as_path).collect();
    let verdict = diff_dirs(&args.baseline, &currents, &args.cfg)?;
    for c in &verdict.checks {
        let tag = match c.status {
            CheckStatus::Pass => "PASS",
            CheckStatus::Fail => "FAIL",
            CheckStatus::Info => "info",
        };
        let section = if c.section.is_empty() {
            String::new()
        } else {
            format!(" [{}]", c.section)
        };
        println!("{tag}  {}{section} {}: {}", c.target, c.name, c.detail);
    }
    if let Some(out) = &args.out {
        std::fs::write(out, verdict.to_json())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("wrote verdict to {}", out.display());
    }
    if let Some(path) = &args.trajectory {
        // Aggregate the first (primary) current tree: that's the run
        // whose artifacts CI uploads.
        let n = write_trajectory(&args.currents[0], path)?;
        println!("wrote {n}-target trajectory to {}", path.display());
    }
    let outcome = if verdict.pass() {
        "no perf regression"
    } else {
        "PERF REGRESSION"
    };
    println!(
        "bench-diff: {outcome} ({} checks, {} failures, {:.0}ms)",
        verdict.checks.len(),
        verdict.failures(),
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(verdict.pass())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench-diff: {e}");
            ExitCode::from(2)
        }
    }
}
