//! Shared plumbing for the benchmark harness.
//!
//! Every figure/table of the paper has a `harness = false` bench target in
//! `benches/`; `cargo bench --workspace` regenerates all of them, printing
//! the same rows/series the paper plots. Criterion microbenches cover the
//! core protocol primitives.
//!
//! Set `MARLIN_SCALE=<n>` to divide workload sizes by `n` for quick runs
//! (default 1 = the paper's full scale). Set `MARLIN_REPORT_JSON=<path>`
//! and every scenario bench writes its `RunReport`s — including the full
//! controller decision log — to that path as a JSON array.

/// Workload shrink factor from the environment (1 = full scale).
#[must_use]
pub fn scale() -> u64 {
    std::env::var("MARLIN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Print the standard experiment banner.
pub fn banner(id: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("{id}");
    println!("paper: {paper_claim}");
    if scale() != 1 {
        println!(
            "NOTE: running at 1/{} workload scale (MARLIN_SCALE)",
            scale()
        );
    }
    println!("==============================================================");
}
