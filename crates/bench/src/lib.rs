//! Shared plumbing for the benchmark harness.
//!
//! Every figure/table of the paper has a `harness = false` bench target in
//! `benches/`; `cargo bench --workspace` regenerates all of them, printing
//! the same rows/series the paper plots. Criterion microbenches cover the
//! core protocol primitives.
//!
//! Set `MARLIN_SCALE=<n>` to divide workload sizes by `n` for quick runs
//! (default 1 = the paper's full scale). Set `MARLIN_REPORT_JSON=<path>`
//! and every scenario bench writes its `RunReport`s — including the full
//! controller decision log — to that path as a JSON array. Set
//! `MARLIN_BENCH_JSON=<dir>` and every target additionally drops a
//! `BENCH_<target>.json` perf-trajectory artifact there (wall time,
//! virtual-seconds-per-wall-second, and the sim self-profile per run).

pub mod diff;

use marlin_cluster::harness::RunReport;
use marlin_telemetry::{BenchReport, BenchSection};
use std::time::Instant;

/// Workload shrink factor from the environment (1 = full scale).
#[must_use]
pub fn scale() -> u64 {
    std::env::var("MARLIN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Print the standard experiment banner.
pub fn banner(id: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("{id}");
    println!("paper: {paper_claim}");
    if scale() != 1 {
        println!(
            "NOTE: running at 1/{} workload scale (MARLIN_SCALE)",
            scale()
        );
    }
    println!("==============================================================");
}

/// Build the `BENCH_<target>.json` perf trajectory from a bench target's
/// finished reports and write it if `MARLIN_BENCH_JSON` is set (silent
/// no-op otherwise). `started` is when the target began — its elapsed
/// wall time is split evenly across sections lacking their own profile
/// (the sim self-profiler, enabled by the same env var, provides exact
/// per-run wall time when present).
pub fn write_perf_trajectory(
    target: &str,
    started: Instant,
    reports: &[RunReport],
) -> Option<String> {
    let mut bench = BenchReport::new(target, scale());
    let elapsed = started.elapsed().as_nanos() as u64;
    let fallback_wall = elapsed / reports.len().max(1) as u64;
    for r in reports {
        let (wall, profile) = match &r.telemetry {
            Some(t) if t.profile.total_wall_nanos > 0 => {
                (t.profile.total_wall_nanos, Some(t.profile.clone()))
            }
            Some(t) => (fallback_wall, Some(t.profile.clone())),
            None => (fallback_wall, None),
        };
        bench.sections.push(BenchSection {
            name: format!("{}/{}/{}", r.scenario, r.backend, r.runner),
            wall_nanos: wall,
            virtual_nanos: r.horizon,
            wall_bounded: false,
            profile,
            values: vec![
                ("commits".into(), r.metrics.commits as f64),
                ("meta_cost".into(), r.metrics.meta_cost),
                (
                    "coord_ops_total".into(),
                    r.metrics.coordination.ops.total() as f64,
                ),
            ],
        });
    }
    bench.maybe_write()
}
