//! A Zipfian rank sampler (the YCSB "zipfian" request distribution).
//!
//! Implements the Gray et al. quick-zipf method YCSB itself uses: after an
//! O(n) precomputation of the generalized harmonic number, each sample
//! costs one uniform draw and a couple of powers. Rank 0 is the hottest
//! item; the harness maps ranks onto granules directly, so a skewed
//! workload concentrates its heat on the low granule ids — exactly the
//! contiguous block the initial placement assigns to the first node,
//! which is what the hot-granule rebalance scenario stresses.

use marlin_sim::DetRng;

/// Samples ranks in `[0, n)` with probability proportional to
/// `1 / (rank + 1)^theta`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// A sampler over `n` items with skew `theta` (YCSB default 0.99;
    /// `theta -> 0` approaches uniform). Precomputation is O(n).
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must lie in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.n
    }

    /// Relative weight of `rank` (unnormalized `1/(rank+1)^theta`).
    #[must_use]
    pub fn weight(&self, rank: u64) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.theta)
    }

    /// Draw the next rank (0 = hottest).
    pub fn next_rank(&self, rng: &mut DetRng) -> u64 {
        let u = rng.unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta.mul_add(u, 1.0 - self.eta)).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_zero_dominates() {
        let z = ZipfSampler::new(1_000, 0.99);
        let mut rng = DetRng::seed(7);
        let mut hits = vec![0u64; 1_000];
        for _ in 0..50_000 {
            hits[z.next_rank(&mut rng) as usize] += 1;
        }
        assert!(hits[0] > hits[10] && hits[10] > hits[500].max(1) / 2);
        // The head carries a disproportionate share of all accesses.
        let head: u64 = hits[..10].iter().sum();
        assert!(
            head > 50_000 / 5,
            "top-1% of ranks must draw >20% of samples, got {head}"
        );
    }

    #[test]
    fn all_ranks_in_range() {
        let z = ZipfSampler::new(17, 0.5);
        let mut rng = DetRng::seed(11);
        for _ in 0..5_000 {
            assert!(z.next_rank(&mut rng) < 17);
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let z = ZipfSampler::new(100, 0.9);
        let mut a = DetRng::seed(3);
        let mut b = DetRng::seed(3);
        for _ in 0..100 {
            assert_eq!(z.next_rank(&mut a), z.next_rank(&mut b));
        }
    }
}
