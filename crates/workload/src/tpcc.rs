//! TPC-C as configured in the paper (§6.1.3).
//!
//! "TPC-C models a warehouse-centric order processing application with
//! nine tables and five transaction types. All tables except ITEM are
//! partitioned by the warehouse ID. The ITEM table is replicated at each
//! server. 10% of NEW-ORDER and 15% of PAYMENT transactions access
//! multiple warehouses; other transactions access data on a single
//! server. We use a warehouse as the unit of migration, and each granule
//! contains one warehouse. To evaluate performance under heavy migration
//! with a large number of warehouses, we tune down the size of each
//! warehouse to ∼1 MB by reducing the number of customers per district."
//!
//! The generator produces the standard mix (NEW-ORDER 45%, PAYMENT 43%,
//! ORDER-STATUS 4%, DELIVERY 4%, STOCK-LEVEL 4%) with NURand customer and
//! item selection. Keys are composite `warehouse-major` encodings so
//! every per-warehouse table maps a transaction's accesses into its home
//! warehouse's granule; ITEM accesses are replicated reads and carry no
//! coordination cost, so they are omitted from the descriptors.

use crate::access::{AccessOp, TxnTemplate};
use marlin_common::TableId;
use marlin_sim::DetRng;

/// The nine TPC-C tables (ITEM omitted from descriptors — replicated).
pub mod tables {
    use marlin_common::TableId;
    pub const WAREHOUSE: TableId = TableId(10);
    pub const DISTRICT: TableId = TableId(11);
    pub const CUSTOMER: TableId = TableId(12);
    pub const HISTORY: TableId = TableId(13);
    pub const NEW_ORDER: TableId = TableId(14);
    pub const ORDER: TableId = TableId(15);
    pub const ORDER_LINE: TableId = TableId(16);
    pub const STOCK: TableId = TableId(17);
    /// ITEM is replicated at every server (reads are local, uncoordinated).
    pub const ITEM: TableId = TableId(18);
}

/// The five transaction types with their standard mix percentages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpccTxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl TpccTxnKind {
    /// Numeric tag stored in [`TxnTemplate::kind`].
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            TpccTxnKind::NewOrder => 1,
            TpccTxnKind::Payment => 2,
            TpccTxnKind::OrderStatus => 3,
            TpccTxnKind::Delivery => 4,
            TpccTxnKind::StockLevel => 5,
        }
    }

    /// Inverse of [`Self::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => TpccTxnKind::NewOrder,
            2 => TpccTxnKind::Payment,
            3 => TpccTxnKind::OrderStatus,
            4 => TpccTxnKind::Delivery,
            5 => TpccTxnKind::StockLevel,
            _ => return None,
        })
    }
}

/// TPC-C generator configuration.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (= granules).
    pub warehouses: u64,
    /// Districts per warehouse (standard: 10).
    pub districts_per_wh: u64,
    /// Customers per district (standard: 3000; paper scales down to reach
    /// ~1 MB warehouses — 30 keeps the same structure at 1% scale).
    pub customers_per_district: u64,
    /// Stock items per warehouse (standard: 100_000; scaled to 1000).
    pub stock_per_wh: u64,
    /// Fraction of NEW-ORDER transactions accessing a remote warehouse
    /// (paper: 10%).
    pub remote_neworder: f64,
    /// Fraction of PAYMENT transactions paying through a remote warehouse
    /// (paper: 15%).
    pub remote_payment: f64,
}

impl TpccConfig {
    /// The paper's scaled-down configuration.
    #[must_use]
    pub fn paper_default(warehouses: u64) -> Self {
        TpccConfig {
            warehouses,
            districts_per_wh: 10,
            customers_per_district: 30,
            stock_per_wh: 1_000,
            remote_neworder: 0.10,
            remote_payment: 0.15,
        }
    }

    /// Keys are warehouse-major: `wh * STRIDE + local`. The granule layout
    /// for every per-warehouse table therefore needs `warehouses` granules
    /// over `[0, warehouses * STRIDE)`.
    pub const KEY_STRIDE: u64 = 1 << 22;

    /// The key space for per-warehouse tables under this config.
    #[must_use]
    pub fn keyspace(&self) -> marlin_common::KeyRange {
        marlin_common::KeyRange::new(0, self.warehouses * Self::KEY_STRIDE)
    }

    /// The warehouse of a composite key.
    #[must_use]
    pub fn warehouse_of(key: u64) -> u64 {
        key / Self::KEY_STRIDE
    }
}

/// Deterministic TPC-C transaction stream.
#[derive(Clone, Debug)]
pub struct TpccGenerator {
    config: TpccConfig,
    rng: DetRng,
    /// NURand constants (chosen once per run, per the spec).
    c_last: u64,
    c_id: u64,
    ol_i_id: u64,
}

impl TpccGenerator {
    /// Create a generator with its own RNG stream.
    #[must_use]
    pub fn new(config: TpccConfig, mut rng: DetRng) -> Self {
        let c_last = rng.range(0, 256);
        let c_id = rng.range(0, 1024);
        let ol_i_id = rng.range(0, 8192);
        TpccGenerator {
            config,
            rng,
            c_last,
            c_id,
            ol_i_id,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// TPC-C NURand(A, x, y): non-uniform random within `[x, y]`.
    fn nurand(&mut self, a: u64, c: u64, x: u64, y: u64) -> u64 {
        let r1 = self.rng.range(0, a + 1);
        let r2 = self.rng.range(x, y + 1);
        (((r1 | r2) + c) % (y - x + 1)) + x
    }

    fn key(&self, wh: u64, table_local: u64) -> u64 {
        wh * TpccConfig::KEY_STRIDE + table_local
    }

    /// Pick a remote warehouse different from `home` (when > 1 exists).
    fn remote_wh(&mut self, home: u64) -> u64 {
        if self.config.warehouses <= 1 {
            return home;
        }
        loop {
            let w = self.rng.range(0, self.config.warehouses);
            if w != home {
                return w;
            }
        }
    }

    /// Generate the next transaction per the standard mix.
    pub fn next_txn(&mut self) -> TxnTemplate {
        let roll = self.rng.unit();
        let kind = if roll < 0.45 {
            TpccTxnKind::NewOrder
        } else if roll < 0.88 {
            TpccTxnKind::Payment
        } else if roll < 0.92 {
            TpccTxnKind::OrderStatus
        } else if roll < 0.96 {
            TpccTxnKind::Delivery
        } else {
            TpccTxnKind::StockLevel
        };
        self.generate(kind)
    }

    /// Generate a transaction of a specific kind.
    pub fn generate(&mut self, kind: TpccTxnKind) -> TxnTemplate {
        let cfg = self.config.clone();
        let home = self.rng.range(0, cfg.warehouses);
        let district = self.rng.range(0, cfg.districts_per_wh);
        let mut ops = Vec::new();
        match kind {
            TpccTxnKind::NewOrder => {
                // Read warehouse tax, read+update district (next order id),
                // read customer; insert order + new-order rows; per order
                // line: read item (replicated, omitted), read+update stock,
                // insert order line.
                ops.push(self.read(tables::WAREHOUSE, home, 0));
                ops.push(self.write(tables::DISTRICT, home, district));
                let customer = self.nurand(1023, self.c_id, 0, cfg.customers_per_district - 1);
                ops.push(self.read(tables::CUSTOMER, home, district * 10_000 + customer));
                let order_slot = self.rng.range(0, 10_000);
                ops.push(self.write(tables::ORDER, home, district * 10_000 + order_slot));
                ops.push(self.write(tables::NEW_ORDER, home, district * 10_000 + order_slot));
                let lines = self.rng.range(5, 16);
                let remote = self.rng.chance(cfg.remote_neworder);
                for line in 0..lines {
                    let item = self.nurand(8191, self.ol_i_id, 0, cfg.stock_per_wh - 1);
                    // 1% of lines (all lines of a "remote" txn here) hit a
                    // remote warehouse's stock — the multi-site path.
                    let supply_wh = if remote && line == 0 {
                        self.remote_wh(home)
                    } else {
                        home
                    };
                    ops.push(self.write(tables::STOCK, supply_wh, item));
                    ops.push(self.write(
                        tables::ORDER_LINE,
                        home,
                        district * 200_000 + order_slot * 16 + line,
                    ));
                }
            }
            TpccTxnKind::Payment => {
                ops.push(self.write(tables::WAREHOUSE, home, 0));
                ops.push(self.write(tables::DISTRICT, home, district));
                let remote = self.rng.chance(cfg.remote_payment);
                let cust_wh = if remote { self.remote_wh(home) } else { home };
                // 60% of customer selections are by last name (NURand over
                // C_LAST), 40% by id, per the TPC-C specification.
                let customer = if self.rng.chance(0.6) {
                    self.nurand(255, self.c_last, 0, cfg.customers_per_district - 1)
                } else {
                    self.nurand(1023, self.c_id, 0, cfg.customers_per_district - 1)
                };
                ops.push(self.write(tables::CUSTOMER, cust_wh, district * 10_000 + customer));
                let history_slot = self.rng_history();
                ops.push(self.write(tables::HISTORY, home, history_slot));
            }
            TpccTxnKind::OrderStatus => {
                let customer = if self.rng.chance(0.6) {
                    self.nurand(255, self.c_last, 0, cfg.customers_per_district - 1)
                } else {
                    self.nurand(1023, self.c_id, 0, cfg.customers_per_district - 1)
                };
                ops.push(self.read(tables::CUSTOMER, home, district * 10_000 + customer));
                let order_slot = self.rng.range(0, 10_000);
                ops.push(self.read(tables::ORDER, home, district * 10_000 + order_slot));
                for line in 0..5 {
                    ops.push(self.read(
                        tables::ORDER_LINE,
                        home,
                        district * 200_000 + order_slot * 16 + line,
                    ));
                }
            }
            TpccTxnKind::Delivery => {
                // One order per district is delivered.
                for d in 0..cfg.districts_per_wh {
                    let order_slot = self.rng.range(0, 10_000);
                    ops.push(self.write(tables::NEW_ORDER, home, d * 10_000 + order_slot));
                    ops.push(self.write(tables::ORDER, home, d * 10_000 + order_slot));
                    let customer = self.rng.range(0, cfg.customers_per_district);
                    ops.push(self.write(tables::CUSTOMER, home, d * 10_000 + customer));
                }
            }
            TpccTxnKind::StockLevel => {
                ops.push(self.read(tables::DISTRICT, home, district));
                for _ in 0..20 {
                    let item = self.rng.range(0, cfg.stock_per_wh);
                    ops.push(self.read(tables::STOCK, home, item));
                }
            }
        }
        TxnTemplate {
            ops,
            kind: kind.tag(),
            anchor: self.key(home, 0),
            anchor_table: tables::WAREHOUSE,
        }
    }

    fn rng_history(&mut self) -> u64 {
        self.rng.range(0, 100_000)
    }

    fn read(&self, table: TableId, wh: u64, local: u64) -> AccessOp {
        AccessOp {
            table,
            key: self.key(wh, local),
            write: false,
        }
    }

    fn write(&self, table: TableId, wh: u64, local: u64) -> AccessOp {
        AccessOp {
            table,
            key: self.key(wh, local),
            write: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(warehouses: u64, seed: u64) -> TpccGenerator {
        TpccGenerator::new(TpccConfig::paper_default(warehouses), DetRng::seed(seed))
    }

    fn touched_warehouses(txn: &TxnTemplate) -> Vec<u64> {
        let mut whs: Vec<u64> = txn
            .ops
            .iter()
            .map(|o| TpccConfig::warehouse_of(o.key))
            .collect();
        whs.sort_unstable();
        whs.dedup();
        whs
    }

    #[test]
    fn mix_matches_standard_percentages() {
        let mut g = generator(16, 1);
        let mut counts = [0usize; 6];
        let n = 20_000;
        for _ in 0..n {
            let txn = g.next_txn();
            counts[txn.kind as usize] += 1;
        }
        let pct = |i: usize| counts[i] as f64 / n as f64;
        assert!((pct(1) - 0.45).abs() < 0.02, "NewOrder {}", pct(1));
        assert!((pct(2) - 0.43).abs() < 0.02, "Payment {}", pct(2));
        assert!((pct(3) - 0.04).abs() < 0.01, "OrderStatus {}", pct(3));
        assert!((pct(4) - 0.04).abs() < 0.01, "Delivery {}", pct(4));
        assert!((pct(5) - 0.04).abs() < 0.01, "StockLevel {}", pct(5));
    }

    #[test]
    fn remote_fractions_match_paper() {
        let mut g = generator(16, 2);
        let mut neworder_total = 0usize;
        let mut neworder_remote = 0usize;
        let mut payment_total = 0usize;
        let mut payment_remote = 0usize;
        for _ in 0..30_000 {
            let txn = g.next_txn();
            let multi = touched_warehouses(&txn).len() > 1;
            match TpccTxnKind::from_tag(txn.kind).unwrap() {
                TpccTxnKind::NewOrder => {
                    neworder_total += 1;
                    neworder_remote += usize::from(multi);
                }
                TpccTxnKind::Payment => {
                    payment_total += 1;
                    payment_remote += usize::from(multi);
                }
                _ => assert!(!multi, "only NewOrder/Payment may be multi-warehouse"),
            }
        }
        let no = neworder_remote as f64 / neworder_total as f64;
        let pay = payment_remote as f64 / payment_total as f64;
        assert!((no - 0.10).abs() < 0.02, "remote NewOrder {no}");
        assert!((pay - 0.15).abs() < 0.02, "remote Payment {pay}");
    }

    #[test]
    fn keys_stay_within_their_warehouse_stride() {
        let mut g = generator(8, 3);
        for _ in 0..1_000 {
            let txn = g.next_txn();
            for op in &txn.ops {
                let wh = TpccConfig::warehouse_of(op.key);
                assert!(wh < 8, "warehouse {wh} out of range");
                assert!(op.key - wh * TpccConfig::KEY_STRIDE < TpccConfig::KEY_STRIDE);
            }
        }
    }

    #[test]
    fn neworder_shape_is_plausible() {
        let mut g = generator(4, 4);
        let txn = g.generate(TpccTxnKind::NewOrder);
        // warehouse read, district write, customer read, order + new-order
        // inserts, then 5-15 order lines of 2 ops each.
        assert!(txn.ops.len() >= 5 + 2 * 5);
        assert!(txn.ops.len() <= 5 + 2 * 15);
        assert!(txn.writes() >= txn.reads(), "NewOrder is write-heavy");
    }

    #[test]
    fn single_warehouse_config_never_goes_remote() {
        let mut g = generator(1, 5);
        for _ in 0..2_000 {
            let txn = g.next_txn();
            assert_eq!(touched_warehouses(&txn), vec![0]);
        }
    }

    #[test]
    fn determinism() {
        let mut a = generator(8, 9);
        let mut b = generator(8, 9);
        for _ in 0..100 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    #[test]
    fn nurand_is_skewed_but_in_range() {
        let mut g = generator(4, 11);
        let mut hits = vec![0usize; 30];
        for _ in 0..10_000 {
            let v = g.nurand(1023, g.c_id, 0, 29) as usize;
            hits[v] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "all values reachable");
        let max = *hits.iter().max().unwrap();
        let min = *hits.iter().min().unwrap();
        assert!(max > 2 * min, "NURand should be visibly non-uniform");
    }
}
