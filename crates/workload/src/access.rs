//! Access descriptors: the interface between generators and the testbed.

use marlin_common::TableId;

/// One data access inside a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOp {
    /// Table touched.
    pub table: TableId,
    /// Primary key (the table layout maps it to a granule).
    pub key: u64,
    /// Write (update/insert) vs read.
    pub write: bool,
}

/// A generated transaction: its accesses plus bookkeeping the harness uses
/// for routing and statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnTemplate {
    /// All accesses, in execution order.
    pub ops: Vec<AccessOp>,
    /// Workload-specific label (YCSB = 0; TPC-C = transaction type).
    pub kind: u8,
    /// For partitioned workloads: the anchor key whose granule determines
    /// the home site (interactive clients route the whole transaction by
    /// this key; multi-site transactions also touch other granules).
    pub anchor: u64,
    /// Table of the anchor key.
    pub anchor_table: TableId,
}

impl TxnTemplate {
    /// Number of reads.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|o| !o.write).count()
    }

    /// Number of writes.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|o| o.write).count()
    }
}
