//! Load traces: client counts as a function of virtual time.
//!
//! The scripted scenarios hard-code one burst (§6.6); the closed-loop
//! autoscaling scenarios need richer exogenous demand. A [`LoadTrace`] is
//! a step function of active client counts that the cluster runners
//! translate into client activations, and that controllers *react to*
//! (they never see the trace, only its effect on measured load).

use marlin_sim::{Nanos, SECOND};

/// A piecewise-constant count of active clients over time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadTrace {
    /// `(from, clients)` steps sorted by time; the first entry is at 0.
    points: Vec<(Nanos, u32)>,
}

impl LoadTrace {
    /// A trace from explicit steps. Entries are sorted by time; a missing
    /// step at time 0 starts the trace at the first entry's count.
    #[must_use]
    pub fn steps(mut points: Vec<(Nanos, u32)>) -> Self {
        assert!(!points.is_empty(), "a trace needs at least one step");
        points.sort_by_key(|&(t, _)| t);
        if points[0].0 != 0 {
            let first = points[0].1;
            points.insert(0, (0, first));
        }
        points.dedup_by_key(|&mut (t, _)| t);
        LoadTrace { points }
    }

    /// A constant load.
    #[must_use]
    pub fn constant(clients: u32) -> Self {
        LoadTrace::steps(vec![(0, clients)])
    }

    /// The §6.6 shape: `base` clients, a spike to `peak` during
    /// `[spike_at, calm_at)`, then back to `base`.
    #[must_use]
    pub fn spike(base: u32, peak: u32, spike_at: Nanos, calm_at: Nanos) -> Self {
        assert!(spike_at < calm_at, "spike must end after it starts");
        LoadTrace::steps(vec![(0, base), (spike_at, peak), (calm_at, base)])
    }

    /// A diurnal curve: sinusoidal demand between `trough` and `peak`
    /// with the given `period`, sampled into `steps_per_period` levels
    /// over `horizon`. Demand starts at the trough (03:00, as it were).
    #[must_use]
    pub fn diurnal(
        trough: u32,
        peak: u32,
        period: Nanos,
        horizon: Nanos,
        steps_per_period: u32,
    ) -> Self {
        assert!(trough <= peak, "trough must not exceed peak");
        assert!(period > 0 && steps_per_period > 0);
        let step = (period / u64::from(steps_per_period)).max(1);
        let mut points = Vec::new();
        let mut t = 0;
        while t <= horizon {
            let phase = (t % period) as f64 / period as f64;
            let level = (1.0 - (2.0 * std::f64::consts::PI * phase).cos()) / 2.0;
            let clients = trough + ((f64::from(peak - trough)) * level).round() as u32;
            points.push((t, clients));
            t += step;
        }
        LoadTrace::steps(points)
    }

    /// The §6.6 burst shape at paper scale: 400 clients, spiking to 800
    /// during `[20 s, 80 s)`. One source of truth for every preset built
    /// on the burst (`dynamic_burst`, `autoscale_spike`, and the CPU
    /// model comparison derived from it) — the shapes stay comparable
    /// because they are literally the same trace.
    #[must_use]
    pub fn paper_burst() -> Self {
        LoadTrace::spike(400, 800, 20 * SECOND, 80 * SECOND)
    }

    /// The two-cycle diurnal curve the closed-loop presets ride: demand
    /// between 100 and 600 clients over a 120 s period, sampled into 12
    /// levels, two full cycles. Shared by `autoscale_diurnal` and the
    /// predictive presets so the forecaster is validated against the
    /// exact curve the reactive baseline ran.
    #[must_use]
    pub fn paper_diurnal() -> Self {
        let period = 120 * SECOND;
        LoadTrace::diurnal(100, 600, period, 2 * period, 12)
    }

    /// A staircase ramp: `from` clients until `start`, then `steps`
    /// equal increments reaching `to` at `end`, holding `to` afterwards.
    /// Unlike [`LoadTrace::spike`]'s instantaneous edge, a ramp carries
    /// advance warning in its slope — the shape trend forecasters can
    /// anticipate (cloud demand grows over minutes; it rarely teleports).
    #[must_use]
    pub fn ramp(from: u32, to: u32, start: Nanos, end: Nanos, steps: u32) -> Self {
        assert!(start < end, "the ramp must take time");
        assert!(steps > 0, "a ramp needs at least one step");
        let mut points = vec![(0, from)];
        for i in 1..=u64::from(steps) {
            let t = start + (end - start) * i / u64::from(steps);
            let c = (i64::from(from)
                + (i64::from(to) - i64::from(from)) * i as i64 / i64::from(steps))
                as u32;
            points.push((t, c));
        }
        LoadTrace::steps(points)
    }

    /// Active clients at time `t` — the *single* step-lookup used by the
    /// runners' client activation and the forecaster's backtester alike.
    #[must_use]
    pub fn clients_at(&self, t: Nanos) -> u32 {
        match self.points.binary_search_by_key(&t, |&(at, _)| at) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The trace as `(from, until, clients)` segments over `[0, horizon)`
    /// — the step intervals behind [`LoadTrace::clients_at`], for
    /// integrators that need dwell times rather than point samples.
    #[must_use]
    pub fn segments(&self, horizon: Nanos) -> Vec<(Nanos, Nanos, u32)> {
        let mut out = Vec::new();
        for (i, &(t, c)) in self.points.iter().enumerate() {
            if t >= horizon {
                break;
            }
            let end = self
                .points
                .get(i + 1)
                .map_or(horizon, |&(next, _)| next.min(horizon));
            out.push((t, end, c));
        }
        out
    }

    /// The maximum client count anywhere on the trace (runners provision
    /// generators for the peak).
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.points.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// All steps, for schedulers that pre-install the changes.
    #[must_use]
    pub fn changes(&self) -> &[(Nanos, u32)] {
        &self.points
    }

    /// Total seconds the trace spends at or above `threshold` clients,
    /// evaluated over `[0, horizon)`.
    #[must_use]
    pub fn seconds_at_or_above(&self, threshold: u32, horizon: Nanos) -> f64 {
        let total: u64 = self
            .segments(horizon)
            .iter()
            .filter(|&&(_, _, c)| c >= threshold)
            .map(|&(from, until, _)| until - from)
            .sum();
        total as f64 / SECOND as f64
    }
}

/// How many of the first `count` round-robin-assigned clients land in
/// group `group` out of `groups`.
///
/// The cluster runners deal clients to regions by `client % regions`
/// and activate the first `count` of them; this is the closed form of
/// that interleaving, used by the cohort client engine to size each
/// region's cohort without materializing per-client state. For any
/// `count`, summing over all groups returns exactly `count`.
#[must_use]
pub fn interleaved_share(count: u32, groups: u32, group: u32) -> u32 {
    assert!(group < groups, "group index out of range");
    count / groups + u32::from(count % groups > group)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_share_partitions_exactly() {
        for groups in 1..6u32 {
            for count in 0..50u32 {
                let total: u32 = (0..groups)
                    .map(|g| interleaved_share(count, groups, g))
                    .sum();
                assert_eq!(total, count);
                // The closed form matches the definitional count.
                for g in 0..groups {
                    let direct = (0..count).filter(|c| c % groups == g).count() as u32;
                    assert_eq!(interleaved_share(count, groups, g), direct);
                }
            }
        }
    }

    #[test]
    fn spike_steps_up_and_down() {
        let t = LoadTrace::spike(100, 200, 10 * SECOND, 40 * SECOND);
        assert_eq!(t.clients_at(0), 100);
        assert_eq!(t.clients_at(10 * SECOND), 200);
        assert_eq!(t.clients_at(39 * SECOND), 200);
        assert_eq!(t.clients_at(40 * SECOND), 100);
        assert_eq!(t.peak(), 200);
    }

    #[test]
    fn diurnal_touches_trough_and_peak() {
        let period = 60 * SECOND;
        let t = LoadTrace::diurnal(50, 150, period, 2 * period, 12);
        let counts: Vec<u32> = t.changes().iter().map(|&(_, c)| c).collect();
        assert_eq!(*counts.iter().min().unwrap(), 50);
        assert_eq!(*counts.iter().max().unwrap(), 150);
        assert_eq!(t.clients_at(0), 50, "diurnal starts at the trough");
        // Mid-period is the peak.
        assert_eq!(t.clients_at(period / 2), 150);
        // The curve is periodic.
        assert_eq!(t.clients_at(period / 4), t.clients_at(period + period / 4));
    }

    #[test]
    fn steps_sort_and_backfill_time_zero() {
        let t = LoadTrace::steps(vec![(20 * SECOND, 10), (5 * SECOND, 30)]);
        assert_eq!(t.clients_at(0), 30);
        assert_eq!(t.clients_at(6 * SECOND), 30);
        assert_eq!(t.clients_at(25 * SECOND), 10);
    }

    #[test]
    fn time_above_threshold_integrates_steps() {
        let t = LoadTrace::spike(100, 200, 10 * SECOND, 40 * SECOND);
        let above = t.seconds_at_or_above(150, 60 * SECOND);
        assert!((above - 30.0).abs() < 1e-9);
    }

    #[test]
    fn segments_tile_the_horizon_and_agree_with_point_lookups() {
        let t = LoadTrace::spike(100, 200, 10 * SECOND, 40 * SECOND);
        let segs = t.segments(60 * SECOND);
        assert_eq!(segs.first().map(|&(from, _, _)| from), Some(0));
        assert_eq!(segs.last().map(|&(_, until, _)| until), Some(60 * SECOND));
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "segments tile with no gaps");
        }
        for &(from, until, c) in &segs {
            assert_eq!(t.clients_at(from), c);
            assert_eq!(t.clients_at(until - 1), c, "constant within the segment");
        }
    }

    #[test]
    fn ramp_climbs_in_equal_steps_and_holds() {
        let t = LoadTrace::ramp(100, 200, 20 * SECOND, 70 * SECOND, 10);
        assert_eq!(t.clients_at(0), 100);
        assert_eq!(t.clients_at(20 * SECOND), 100, "first step lands later");
        assert_eq!(t.clients_at(25 * SECOND), 110);
        assert_eq!(t.clients_at(70 * SECOND), 200);
        assert_eq!(t.clients_at(100 * SECOND), 200, "holds the top");
        let counts: Vec<u32> = t.changes().iter().map(|&(_, c)| c).collect();
        assert!(counts.windows(2).all(|w| w[1] >= w[0]), "monotone ramp");
    }

    #[test]
    fn paper_shapes_are_the_preset_curves() {
        let burst = LoadTrace::paper_burst();
        assert_eq!(burst.clients_at(0), 400);
        assert_eq!(burst.clients_at(20 * SECOND), 800);
        assert_eq!(burst.clients_at(80 * SECOND), 400);
        let diurnal = LoadTrace::paper_diurnal();
        assert_eq!(diurnal.clients_at(0), 100, "starts at the trough");
        assert_eq!(diurnal.peak(), 600);
        // Periodic over the 120 s cycle.
        assert_eq!(
            diurnal.clients_at(30 * SECOND),
            diurnal.clients_at(150 * SECOND)
        );
    }
}
