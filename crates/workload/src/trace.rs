//! Load traces: client counts as a function of virtual time.
//!
//! The scripted scenarios hard-code one burst (§6.6); the closed-loop
//! autoscaling scenarios need richer exogenous demand. A [`LoadTrace`] is
//! a step function of active client counts that the cluster runners
//! translate into client activations, and that controllers *react to*
//! (they never see the trace, only its effect on measured load).

use marlin_sim::{Nanos, SECOND};

/// A piecewise-constant count of active clients over time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadTrace {
    /// `(from, clients)` steps sorted by time; the first entry is at 0.
    points: Vec<(Nanos, u32)>,
}

impl LoadTrace {
    /// A trace from explicit steps. Entries are sorted by time; a missing
    /// step at time 0 starts the trace at the first entry's count.
    #[must_use]
    pub fn steps(mut points: Vec<(Nanos, u32)>) -> Self {
        assert!(!points.is_empty(), "a trace needs at least one step");
        points.sort_by_key(|&(t, _)| t);
        if points[0].0 != 0 {
            let first = points[0].1;
            points.insert(0, (0, first));
        }
        points.dedup_by_key(|&mut (t, _)| t);
        LoadTrace { points }
    }

    /// A constant load.
    #[must_use]
    pub fn constant(clients: u32) -> Self {
        LoadTrace::steps(vec![(0, clients)])
    }

    /// The §6.6 shape: `base` clients, a spike to `peak` during
    /// `[spike_at, calm_at)`, then back to `base`.
    #[must_use]
    pub fn spike(base: u32, peak: u32, spike_at: Nanos, calm_at: Nanos) -> Self {
        assert!(spike_at < calm_at, "spike must end after it starts");
        LoadTrace::steps(vec![(0, base), (spike_at, peak), (calm_at, base)])
    }

    /// A diurnal curve: sinusoidal demand between `trough` and `peak`
    /// with the given `period`, sampled into `steps_per_period` levels
    /// over `horizon`. Demand starts at the trough (03:00, as it were).
    #[must_use]
    pub fn diurnal(
        trough: u32,
        peak: u32,
        period: Nanos,
        horizon: Nanos,
        steps_per_period: u32,
    ) -> Self {
        assert!(trough <= peak, "trough must not exceed peak");
        assert!(period > 0 && steps_per_period > 0);
        let step = (period / u64::from(steps_per_period)).max(1);
        let mut points = Vec::new();
        let mut t = 0;
        while t <= horizon {
            let phase = (t % period) as f64 / period as f64;
            let level = (1.0 - (2.0 * std::f64::consts::PI * phase).cos()) / 2.0;
            let clients = trough + ((f64::from(peak - trough)) * level).round() as u32;
            points.push((t, clients));
            t += step;
        }
        LoadTrace::steps(points)
    }

    /// Active clients at time `t`.
    #[must_use]
    pub fn clients_at(&self, t: Nanos) -> u32 {
        match self.points.binary_search_by_key(&t, |&(at, _)| at) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The maximum client count anywhere on the trace (runners provision
    /// generators for the peak).
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.points.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// All steps, for schedulers that pre-install the changes.
    #[must_use]
    pub fn changes(&self) -> &[(Nanos, u32)] {
        &self.points
    }

    /// Total seconds the trace spends at or above `threshold` clients,
    /// evaluated over `[0, horizon)`.
    #[must_use]
    pub fn seconds_at_or_above(&self, threshold: u32, horizon: Nanos) -> f64 {
        let mut total = 0u64;
        for (i, &(t, c)) in self.points.iter().enumerate() {
            if t >= horizon {
                break;
            }
            let end = self
                .points
                .get(i + 1)
                .map_or(horizon, |&(next, _)| next.min(horizon));
            if c >= threshold {
                total += end - t;
            }
        }
        total as f64 / SECOND as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_steps_up_and_down() {
        let t = LoadTrace::spike(100, 200, 10 * SECOND, 40 * SECOND);
        assert_eq!(t.clients_at(0), 100);
        assert_eq!(t.clients_at(10 * SECOND), 200);
        assert_eq!(t.clients_at(39 * SECOND), 200);
        assert_eq!(t.clients_at(40 * SECOND), 100);
        assert_eq!(t.peak(), 200);
    }

    #[test]
    fn diurnal_touches_trough_and_peak() {
        let period = 60 * SECOND;
        let t = LoadTrace::diurnal(50, 150, period, 2 * period, 12);
        let counts: Vec<u32> = t.changes().iter().map(|&(_, c)| c).collect();
        assert_eq!(*counts.iter().min().unwrap(), 50);
        assert_eq!(*counts.iter().max().unwrap(), 150);
        assert_eq!(t.clients_at(0), 50, "diurnal starts at the trough");
        // Mid-period is the peak.
        assert_eq!(t.clients_at(period / 2), 150);
        // The curve is periodic.
        assert_eq!(t.clients_at(period / 4), t.clients_at(period + period / 4));
    }

    #[test]
    fn steps_sort_and_backfill_time_zero() {
        let t = LoadTrace::steps(vec![(20 * SECOND, 10), (5 * SECOND, 30)]);
        assert_eq!(t.clients_at(0), 30);
        assert_eq!(t.clients_at(6 * SECOND), 30);
        assert_eq!(t.clients_at(25 * SECOND), 10);
    }

    #[test]
    fn time_above_threshold_integrates_steps() {
        let t = LoadTrace::spike(100, 200, 10 * SECOND, 40 * SECOND);
        let above = t.seconds_at_or_above(150, 60 * SECOND);
        assert!((above - 30.0).abs() < 1e-9);
    }
}
