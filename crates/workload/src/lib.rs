//! Workload generators for the evaluation (§6.1.3).
//!
//! Both generators emit *access descriptors* — which keys a transaction
//! touches, in which tables, read or write — rather than executing SQL.
//! The coordination experiments depend only on access patterns (which
//! granules are touched, single- vs multi-site, read/write mix), never on
//! tuple values, so this keeps 24 GB-scale workloads laptop-sized while
//! preserving every behavior the figures measure. The functional engine
//! path (real rows) is exercised by the unit/integration suites at small
//! scale.
//!
//! - [`ycsb`] — the Yahoo! Cloud Serving Benchmark as configured in the
//!   paper: 1 KB tuples, 64 KB granules, 16 requests per transaction at
//!   50% reads / 50% updates, uniform key distribution, single-site.
//! - [`tpcc`] — TPC-C with a warehouse per granule (scaled to ~1 MB by
//!   reducing customers per district), the standard transaction mix,
//!   NURand skew, and 10% / 15% multi-warehouse NEW-ORDER / PAYMENT.
//! - [`trace`] — client-count load traces (spike, diurnal, custom steps)
//!   that drive the closed-loop autoscaling scenarios.
//! - [`zipf`] — the YCSB Zipfian rank sampler behind the skewed-access
//!   (hot-granule) variants.

pub mod access;
pub mod tpcc;
pub mod trace;
pub mod ycsb;
pub mod zipf;

pub use access::{AccessOp, TxnTemplate};
pub use tpcc::{TpccConfig, TpccGenerator, TpccTxnKind};
pub use trace::{interleaved_share, LoadTrace};
pub use ycsb::{YcsbConfig, YcsbGenerator};
pub use zipf::ZipfSampler;
