//! YCSB as configured in the paper (§6.1.3).
//!
//! "We use tables with different sizes (ranging from 3 GB to 20 GB) that
//! are partitioned into granules across servers by range on the primary
//! key... each tuple is around 1 KB and each granule is 64 KB. Each
//! transaction is single-site and has 16 requests with 50% reads and 50%
//! updates accessing 16 tuples. We generate requests following a uniform
//! distribution."
//!
//! Single-site is realized by anchoring each transaction at a random
//! granule and drawing all 16 keys from that granule's key range — a
//! granule maps to exactly one owner node, so the whole transaction
//! executes at one site regardless of how ownership moves. The anchor
//! granule is uniform by default (the paper's setting); an optional
//! Zipfian skew concentrates heat on the low granule ids for the
//! hot-granule rebalance scenarios.

use crate::access::{AccessOp, TxnTemplate};
use crate::zipf::ZipfSampler;
use marlin_common::{GranuleLayout, TableId};
use marlin_sim::DetRng;

/// YCSB generator configuration.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// The user table's layout (granule count defines the key space).
    pub layout: GranuleLayout,
    /// Requests per transaction (paper: 16).
    pub reqs_per_txn: usize,
    /// Fraction of requests that are reads (paper: 0.5).
    pub read_ratio: f64,
    /// Optional Zipfian skew over anchor granules: `Some(theta)` draws
    /// granule ranks from `1/(rank+1)^theta` (rank 0 = granule 0 is the
    /// hottest); `None` is the paper's uniform distribution.
    pub zipfian: Option<f64>,
}

impl YcsbConfig {
    /// The paper's default configuration over a given layout.
    #[must_use]
    pub fn paper_default(layout: GranuleLayout) -> Self {
        YcsbConfig {
            layout,
            reqs_per_txn: 16,
            read_ratio: 0.5,
            zipfian: None,
        }
    }

    /// The paper's configuration with a Zipfian anchor skew of `theta`.
    #[must_use]
    pub fn zipfian(layout: GranuleLayout, theta: f64) -> Self {
        YcsbConfig {
            zipfian: Some(theta),
            ..YcsbConfig::paper_default(layout)
        }
    }

    /// A layout with `granules` granules of 64 tuples each (64 KB granule
    /// of 1 KB tuples), as in the paper's setup.
    #[must_use]
    pub fn paper_layout(table: TableId, granules: u64) -> GranuleLayout {
        GranuleLayout::uniform(
            table,
            marlin_common::KeyRange::new(0, granules * 64),
            granules,
            64 * 1024,
            1024,
        )
    }
}

/// Deterministic YCSB transaction stream.
#[derive(Clone, Debug)]
pub struct YcsbGenerator {
    config: YcsbConfig,
    rng: DetRng,
    zipf: Option<ZipfSampler>,
}

impl YcsbGenerator {
    /// Create a generator with its own RNG stream.
    #[must_use]
    pub fn new(config: YcsbConfig, rng: DetRng) -> Self {
        let zipf = config
            .zipfian
            .map(|theta| ZipfSampler::new(config.layout.granule_count, theta));
        YcsbGenerator { config, rng, zipf }
    }

    /// The configured layout.
    #[must_use]
    pub fn layout(&self) -> &GranuleLayout {
        &self.config.layout
    }

    /// Generate the next transaction.
    pub fn next_txn(&mut self) -> TxnTemplate {
        let layout = &self.config.layout;
        let granule = match &self.zipf {
            Some(z) => z.next_rank(&mut self.rng),
            None => self.rng.range(0, layout.granule_count),
        };
        let range = layout.range_of(marlin_common::GranuleId(granule));
        let anchor = self.rng.range(range.lo, range.hi);
        let mut ops = Vec::with_capacity(self.config.reqs_per_txn);
        for _ in 0..self.config.reqs_per_txn {
            let key = self.rng.range(range.lo, range.hi);
            let write = !self.rng.chance(self.config.read_ratio);
            ops.push(AccessOp {
                table: layout.table,
                key,
                write,
            });
        }
        TxnTemplate {
            ops,
            kind: 0,
            anchor,
            anchor_table: layout.table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(granules: u64, seed: u64) -> YcsbGenerator {
        let layout = YcsbConfig::paper_layout(TableId(0), granules);
        YcsbGenerator::new(YcsbConfig::paper_default(layout), DetRng::seed(seed))
    }

    #[test]
    fn txns_are_single_granule_sixteen_ops() {
        let mut g = generator(100, 1);
        for _ in 0..200 {
            let txn = g.next_txn();
            assert_eq!(txn.ops.len(), 16);
            let layout = g.layout().clone();
            let anchor_granule = layout.granule_of(txn.anchor).unwrap();
            for op in &txn.ops {
                assert_eq!(layout.granule_of(op.key).unwrap(), anchor_granule);
            }
        }
    }

    #[test]
    fn read_write_mix_is_roughly_half() {
        let mut g = generator(100, 2);
        let mut reads = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let txn = g.next_txn();
            reads += txn.reads();
            total += txn.ops.len();
        }
        let ratio = reads as f64 / total as f64;
        assert!((0.45..0.55).contains(&ratio), "read ratio {ratio}");
    }

    #[test]
    fn anchors_are_uniform_over_granules() {
        let mut g = generator(10, 3);
        let mut hits = [0usize; 10];
        for _ in 0..10_000 {
            let txn = g.next_txn();
            let granule = g.layout().granule_of(txn.anchor).unwrap();
            hits[granule.0 as usize] += 1;
        }
        for (i, h) in hits.iter().enumerate() {
            assert!((700..1300).contains(h), "granule {i} hit {h} times");
        }
    }

    #[test]
    fn zipfian_anchors_skew_toward_low_granules() {
        let layout = YcsbConfig::paper_layout(TableId(0), 100);
        let mut g = YcsbGenerator::new(YcsbConfig::zipfian(layout, 0.99), DetRng::seed(5));
        let mut hits = [0usize; 100];
        for _ in 0..10_000 {
            let txn = g.next_txn();
            let granule = g.layout().granule_of(txn.anchor).unwrap();
            hits[granule.0 as usize] += 1;
        }
        let head: usize = hits[..10].iter().sum();
        let tail: usize = hits[90..].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "zipfian head {head} must dwarf tail {tail}"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = generator(50, 7);
        let mut b = generator(50, 7);
        for _ in 0..50 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }
}
