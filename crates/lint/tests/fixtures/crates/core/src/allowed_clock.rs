//! Wall-clock reads exempted by the fixture lint.toml path allowlist.

pub fn measured() -> std::time::Instant {
    std::time::Instant::now()
}
