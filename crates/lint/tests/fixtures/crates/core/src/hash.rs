//! Planted `no-hash-collections` violations (lint fixture, never compiled).
use std::collections::HashMap;

pub fn bad() -> HashMap<u32, u32> {
    HashMap::new()
}

// marlin-lint: allow(no-hash-collections, fixture: lookup-only, never iterated)
pub fn waived(set: std::collections::HashSet<u8>) -> usize {
    set.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_only_hash_is_fine() {
        let _ = HashSet::<u8>::new();
    }
}
