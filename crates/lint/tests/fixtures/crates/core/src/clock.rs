//! Planted `no-wallclock` violations (lint fixture, never compiled).

pub fn now_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis()
}

pub fn tick() -> std::time::Instant {
    std::time::Instant::now()
}
