//! Planted `no-ambient-rng` violations (lint fixture, never compiled).

pub fn seed() -> u64 {
    let _rng = thread_rng();
    0
}

pub struct Keyed(std::collections::hash_map::RandomState);
