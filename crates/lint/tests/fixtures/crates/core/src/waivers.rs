//! Waiver edge cases (lint fixture, never compiled).

// marlin-lint: allow(bogus-rule, not a real rule)
pub fn nothing() {}

// marlin-lint: allow(no-wallclock, nothing on the next line to waive)
pub fn also_nothing() {}
