//! Planted `fork-label-uniqueness` collision (lint fixture, never compiled).

const STREAM_A: u64 = 7;

pub fn forks(rng: &mut DetRng) {
    let _a = rng.fork(7);
    let _b = rng.fork(STREAM_A);
    let _c = rng.fork(8);
}
