//! Planted `no-panic-in-lib` findings (lint fixture, never compiled).

pub fn first(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn second(v: Option<u8>) -> u8 {
    v.expect("fixture")
}

pub fn third() {
    panic!("fixture")
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_is_fine() {
        let _ = super::first(Some(1));
    }
}
