//! Under the fixture lint.toml `exclude` — never scanned.
use std::collections::HashMap;

pub fn invisible() -> HashMap<u8, u8> {
    HashMap::new()
}
