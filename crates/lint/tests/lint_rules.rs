//! Integration tests for marlin-lint: every rule fires on its planted
//! fixture with exact file:line diagnostics, waivers are honored, the
//! budget ratchet trips, and the real workspace scans clean.

use marlin_lint::{load_config, run, LintReport, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_report() -> LintReport {
    let root = fixture_root();
    let cfg = load_config(&root).expect("fixture lint.toml parses");
    run(&root, &cfg).expect("fixture tree lints")
}

/// `(rule, file, line)` triples of active findings for one rule.
fn findings(report: &LintReport, rule: &str) -> Vec<(String, usize)> {
    report
        .violations
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.file.clone(), d.line))
        .collect()
}

#[test]
fn no_hash_collections_fires_with_exact_lines() {
    let report = fixture_report();
    assert_eq!(
        findings(&report, "no-hash-collections"),
        vec![
            ("crates/core/src/hash.rs".to_string(), 2),
            ("crates/core/src/hash.rs".to_string(), 4),
            ("crates/core/src/hash.rs".to_string(), 5),
        ],
        "exactly the three un-waived HashMap mentions outside #[cfg(test)]"
    );
}

#[test]
fn no_wallclock_fires_and_respects_the_allowlist() {
    let report = fixture_report();
    assert_eq!(
        findings(&report, "no-wallclock"),
        vec![
            ("crates/core/src/clock.rs".to_string(), 4),
            ("crates/core/src/clock.rs".to_string(), 5),
            ("crates/core/src/clock.rs".to_string(), 10),
            ("crates/core/src/clock.rs".to_string(), 11),
        ],
        "SystemTime, UNIX_EPOCH, and both Instant mentions; allowed_clock.rs exempt"
    );
}

#[test]
fn no_ambient_rng_fires() {
    let report = fixture_report();
    assert_eq!(
        findings(&report, "no-ambient-rng"),
        vec![
            ("crates/core/src/rng.rs".to_string(), 4),
            ("crates/core/src/rng.rs".to_string(), 8),
        ],
        "thread_rng and RandomState"
    );
}

#[test]
fn fork_label_collisions_are_reported_on_both_sites() {
    let report = fixture_report();
    assert_eq!(
        findings(&report, "fork-label-uniqueness"),
        vec![
            ("crates/core/src/forks.rs".to_string(), 6),
            ("crates/core/src/forks.rs".to_string(), 7),
        ],
        "literal 7 and const STREAM_A = 7 collide; fork(8) is unique"
    );
    let msg = &report
        .violations
        .iter()
        .find(|d| d.rule == "fork-label-uniqueness")
        .expect("collision diagnostic present")
        .message;
    assert!(
        msg.contains("label 7"),
        "message names the colliding label: {msg}"
    );
}

#[test]
fn no_panic_in_lib_counts_against_the_budget() {
    let report = fixture_report();
    assert_eq!(
        findings(&report, "no-panic-in-lib"),
        vec![
            ("crates/core/src/panics.rs".to_string(), 4),
            ("crates/core/src/panics.rs".to_string(), 8),
            ("crates/core/src/panics.rs".to_string(), 12),
        ],
        "unwrap(), expect(), panic! in lib code; the #[cfg(test)] module is exempt"
    );
    assert_eq!(report.panic_findings, 3);
    assert_eq!(
        report.panic_budget, 2,
        "fixture budget is deliberately short"
    );
    assert!(
        !report.ok(),
        "3 findings over a budget of 2 must fail the gate"
    );
}

#[test]
fn waivers_are_honored_and_audited() {
    let report = fixture_report();
    let waived: Vec<(String, usize)> = report
        .waived
        .iter()
        .map(|d| (d.file.clone(), d.line))
        .collect();
    assert_eq!(
        waived,
        vec![("crates/core/src/hash.rs".to_string(), 9)],
        "the whole-line waiver covers the HashSet on the next line"
    );
    assert!(
        report.waived[0].message.contains("lookup-only"),
        "waived diagnostics carry the justification for audit"
    );
}

#[test]
fn malformed_and_unused_waivers_are_flagged() {
    let report = fixture_report();
    assert_eq!(
        findings(&report, "bad-waiver"),
        vec![("crates/core/src/waivers.rs".to_string(), 3)],
        "unknown rule in a directive is a hard error, not a silent no-op"
    );
    assert_eq!(
        findings(&report, "unused-waiver"),
        vec![("crates/core/src/waivers.rs".to_string(), 6)],
        "a waiver nothing consumed is reported so stale escapes get removed"
    );
    let unused = report
        .violations
        .iter()
        .find(|d| d.rule == "unused-waiver")
        .expect("unused-waiver diagnostic present");
    assert_eq!(unused.severity, Severity::Warn);
}

#[test]
fn excluded_paths_are_never_scanned() {
    let report = fixture_report();
    assert!(
        report
            .violations
            .iter()
            .chain(report.waived.iter())
            .all(|d| !d.file.starts_with("excluded/")),
        "fixture lint.toml `exclude` must drop the whole subtree"
    );
}

#[test]
fn fixture_gate_fails_overall() {
    let report = fixture_report();
    assert!(!report.ok());
    assert!(
        report
            .violations
            .iter()
            .any(|d| d.severity == Severity::Error),
        "planted errors must be error-severity"
    );
}

#[test]
fn json_output_is_well_formed_and_complete() {
    let report = fixture_report();
    let json = report.to_json();
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("\"rule\": \"no-hash-collections\""));
    assert!(json.contains("\"file\": \"crates/core/src/forks.rs\""));
    assert!(json.contains("\"panic_budget\": {\"findings\": 3, \"budget\": 2}"));
    // Balanced braces/brackets as a cheap structural check (the repo has
    // no JSON parser dependency to round-trip with).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in:\n{json}");
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

/// The load-bearing check: the real workspace lints clean. This is the
/// same invocation CI gates on (`cargo run -p lint -- --check`).
#[test]
fn real_workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg = load_config(&root).expect("workspace lint.toml parses");
    let report = run(&root, &cfg).expect("workspace lints");
    let errors: Vec<String> = report
        .violations
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    assert!(
        errors.is_empty(),
        "workspace must be lint-clean:\n{}",
        errors.join("\n")
    );
    assert!(
        report.panic_findings as u64 <= report.panic_budget,
        "no-panic-in-lib ratchet exceeded: {}/{} — fix the new panic \
         sites instead of raising the budget",
        report.panic_findings,
        report.panic_budget
    );
    assert!(report.ok());
    assert!(
        report.files_scanned > 100,
        "sanity: the workspace walk found only {} files",
        report.files_scanned
    );
}
