//! A comment- and string-aware Rust tokenizer.
//!
//! The lint rules only need a faithful *token stream*: identifiers,
//! integer literals, and punctuation, each tagged with a 1-based line
//! number — with comments and string/char literals either skipped or
//! produced as opaque tokens so rule patterns can never match inside
//! them. This is deliberately not a full Rust lexer (no float
//! disambiguation, no multi-character operators): rules pattern-match
//! on identifier/punct sequences, for which single-character puncts
//! are sufficient and simpler to reason about.
//!
//! Handled faithfully, because real sources in this workspace use them:
//! line comments (`//`, `///`, `//!`), nested block comments, string
//! escapes, raw strings (`r"…"`, `r#"…"#`, any number of `#`s), byte
//! and C strings (`b"…"`, `br#"…"#`, `c"…"`), char and byte-char
//! literals (`'a'`, `b'\n'`), lifetimes (`'a`), and raw identifiers
//! (`r#type`).

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based line on which the token *starts*.
    pub line: usize,
}

/// Token classification; carries text only where a rule needs it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident(String),
    /// Integer literal, raw spelling (`0x1F`, `1_000u64`, …).
    Int(String),
    /// String literal of any flavor; contents are opaque to rules.
    Str,
    /// Char or byte-char literal; contents are opaque to rules.
    Char,
    /// Lifetime such as `'a` (label text not needed by any rule).
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

/// A comment with its location, kept for waiver-directive parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// Whether anything other than whitespace preceded it on its line.
    pub trailing: bool,
}

/// Result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All comments, for `marlin-lint: allow(...)` directive parsing.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes
/// are dropped (the lint only needs the constructs listed above, and a
/// file that does not compile will be caught by the build anyway).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    /// Whether a token has already been produced on the current line
    /// (distinguishes trailing comments from whole-line comments).
    line_has_code: bool,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_code = false;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.out.tokens.push(Token { kind, line });
        self.line_has_code = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_body(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    /// Consume a `"…"` body with escapes; emits [`TokenKind::Str`].
    fn string_body(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char (covers \" and \\)
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, line);
    }

    /// Consume `r"…"` / `r#"…"#` style raw strings; caller has consumed
    /// the prefix up to (not including) the first `#` or `"`.
    fn raw_string_body(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a` (lifetime) vs `'a'` (char): after the quote, an
        // identifier-start char NOT followed by a closing quote is a
        // lifetime. Everything else (escapes, punctuation) is a char.
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime =
            matches!(c1, Some(c) if c.is_alphabetic() || c == '_') && c2 != Some('\'');
        self.bump(); // the quote
        if is_lifetime {
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push(TokenKind::Lifetime, line);
            return;
        }
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Char, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Int(text), line);
    }

    /// Identifier, or one of the literal prefixes (`r"`, `r#"`, `b"`,
    /// `br"`, `c"`, `b'`) that share an identifier-start character.
    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let c = self.peek(0).unwrap_or(' ');
        let next = self.peek(1);
        // Raw string `r"…"` or `r#"…"#` — but `r#ident` is a raw ident.
        if c == 'r' && next == Some('"') {
            self.bump();
            self.raw_string_body();
            return;
        }
        if c == 'r' && next == Some('#') {
            // `r#"` raw string vs `r#ident` raw identifier.
            let mut i = 1;
            while self.peek(i) == Some('#') {
                i += 1;
            }
            if self.peek(i) == Some('"') {
                self.bump();
                self.raw_string_body();
                return;
            }
            // Raw identifier: skip `r#`, lex the identifier normally.
            self.bump();
            self.bump();
        } else if (c == 'b' || c == 'c') && next == Some('"') {
            self.bump();
            self.string_body();
            return;
        } else if c == 'b' && next == Some('r') && matches!(self.peek(2), Some('"') | Some('#')) {
            self.bump();
            self.bump();
            self.raw_string_body();
            return;
        } else if c == 'b' && next == Some('\'') {
            self.bump();
            self.char_or_lifetime();
            return;
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(text), line);
    }
}

/// Parse an integer-literal spelling (as produced by the lexer) into a
/// value: handles `0x`/`0o`/`0b` radixes, `_` separators, and trailing
/// type suffixes (`u64`, `usize`, …). Returns `None` for floats or
/// malformed spellings.
#[must_use]
pub fn parse_int(spelling: &str) -> Option<u64> {
    let s: String = spelling.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(rest) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = s.strip_prefix("0o") {
        (8, rest)
    } else if let Some(rest) = s.strip_prefix("0b") {
        (2, rest)
    } else {
        (10, s.as_str())
    };
    // Strip a type suffix (`u64`, `usize`, `i32`, …): cut at the first
    // `u`/`i`, provided some digits precede it.
    let digits = match digits.find(['u', 'i']) {
        Some(at) if at > 0 => &digits[..at],
        _ => digits,
    };
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap::new()";
            let r = r#"HashSet"#;
            let b = b"HashMap";
            let map = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "HashSet"));
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> Instant { x }");
        assert!(ids.iter().any(|i| i == "Instant"));
        assert!(ids.iter().any(|i| i == "str"));
    }

    #[test]
    fn char_literals_are_opaque() {
        let ids = idents("let c = 'H'; let d = '\\n'; let e = b'x'; after()");
        assert!(ids.iter().any(|i| i == "after"));
        assert_eq!(ids, vec!["let", "c", "let", "d", "let", "e", "after"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; r#fork(2)");
        assert!(ids.iter().any(|i| i == "type"));
        assert!(ids.iter().any(|i| i == "fork"));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<(String, usize)> = lexed
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]
        );
    }

    #[test]
    fn trailing_flag_distinguishes_comment_position() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let lexed = lex("let s = \"line1\nline2\";\nnext");
        let next = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "next"))
            .expect("`next` token must survive the multiline string");
        assert_eq!(next.line, 3);
    }

    #[test]
    fn int_parsing_handles_radixes_and_suffixes() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("1_000u64"), Some(1000));
        assert_eq!(parse_int("0x1F"), Some(31));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("9001"), Some(9001));
        assert_eq!(parse_int("banana"), None);
    }
}
