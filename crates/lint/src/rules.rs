//! The rule engine: file classification, `#[cfg(test)]` suppression,
//! waiver directives, and the five marlin-lint rules.

use crate::config::Config;
use crate::lexer::{self, Comment, Lexed, Token, TokenKind};
use crate::{Diagnostic, LintReport, Severity};
use std::collections::BTreeMap;

/// Rule name: hash collections banned in deterministic crates.
pub const NO_HASH_COLLECTIONS: &str = "no-hash-collections";
/// Rule name: wall-clock reads restricted to the allowlist.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// Rule name: only `DetRng`-derived randomness.
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
/// Rule name: static `DetRng::fork` labels must not collide.
pub const FORK_LABEL_UNIQUENESS: &str = "fork-label-uniqueness";
/// Rule name: panic sites in library code ride a budget.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// Pseudo-rule for malformed or unknown waiver directives.
pub const BAD_WAIVER: &str = "bad-waiver";
/// Pseudo-rule for waivers that no finding consumed.
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Every real (waivable) rule.
pub const ALL_RULES: [&str; 5] = [
    NO_HASH_COLLECTIONS,
    NO_WALLCLOCK,
    NO_AMBIENT_RNG,
    FORK_LABEL_UNIQUENESS,
    NO_PANIC_IN_LIB,
];

/// What part of the workspace a file belongs to, which decides which
/// rules see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/<name>/src/**` or the root `src/**`).
    Lib,
    /// Example binary (`examples/**` at root or under a crate).
    Example,
    /// Integration tests and benches (`tests/**`, `benches/**`).
    TestOrBench,
}

/// An inline `// marlin-lint: allow(<rule>, <reason>)` directive.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Rule being waived.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the directive comment.
    pub line: usize,
    /// Whether the directive shared its line with code (trailing) —
    /// a trailing waiver covers its own line, a whole-line waiver
    /// covers the next line.
    pub trailing: bool,
    /// Set once a finding consumed the waiver.
    pub used: bool,
}

/// One source file, lexed and classified.
pub struct FileCtx {
    /// Root-relative `/`-separated path.
    pub rel: String,
    /// Which rule scopes apply.
    pub class: FileClass,
    /// Crate name for `crates/<name>/...` paths (`marlin` for root).
    pub crate_name: String,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Token-index ranges under `#[cfg(test)]` (half-open).
    pub suppressed: Vec<(usize, usize)>,
    /// Parsed waiver directives.
    pub waivers: Vec<Waiver>,
    /// Malformed/unknown directives found while parsing waivers.
    pub waiver_errors: Vec<(usize, String)>,
}

impl FileCtx {
    /// Lex and classify one file.
    #[must_use]
    pub fn build(rel: String, text: &str) -> FileCtx {
        let lexed = lexer::lex(text);
        let (class, crate_name) = classify(&rel);
        let suppressed = cfg_test_ranges(&lexed.tokens);
        let (waivers, waiver_errors) = parse_waivers(&lexed.comments);
        FileCtx {
            rel,
            class,
            crate_name,
            lexed,
            suppressed,
            waivers,
            waiver_errors,
        }
    }

    fn is_suppressed(&self, token_idx: usize) -> bool {
        self.suppressed
            .iter()
            .any(|&(a, b)| token_idx >= a && token_idx < b)
    }

    /// Consume a waiver for `rule` covering `line`, if one exists: a
    /// trailing directive on the same line, or a whole-line directive
    /// on the line directly above.
    fn take_waiver(&mut self, rule: &str, line: usize) -> Option<String> {
        for w in &mut self.waivers {
            let covers = if w.trailing {
                w.line == line
            } else {
                w.line + 1 == line || w.line == line
            };
            if covers && w.rule == rule {
                w.used = true;
                return Some(w.reason.clone());
            }
        }
        None
    }
}

fn classify(rel: &str) -> (FileClass, String) {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, "src", ..] => (FileClass::Lib, (*name).to_string()),
        ["crates", name, "examples", ..] => (FileClass::Example, (*name).to_string()),
        ["crates", name, _, ..] => (FileClass::TestOrBench, (*name).to_string()),
        ["src", ..] => (FileClass::Lib, "marlin".to_string()),
        ["examples", ..] => (FileClass::Example, "marlin".to_string()),
        _ => (FileClass::TestOrBench, "marlin".to_string()),
    }
}

/// Find half-open token ranges covered by `#[cfg(test)]` attributes
/// (the attribute through the end of the item it gates). `cfg`
/// predicates that merely *mention* test under a `not(...)` are left
/// active.
fn cfg_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some((attr_end, gates_test)) = parse_cfg_attr(tokens, i) {
            if gates_test {
                let item_end = skip_item(tokens, attr_end);
                out.push((i, item_end));
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    out
}

/// If `tokens[i..]` starts a `#[cfg(...)]` attribute, return the index
/// just past its `]` and whether the predicate gates on `test`.
fn parse_cfg_attr(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if !matches!(tokens.get(i)?.kind, TokenKind::Punct('#')) {
        return None;
    }
    if !matches!(tokens.get(i + 1)?.kind, TokenKind::Punct('[')) {
        return None;
    }
    let is_cfg = matches!(&tokens.get(i + 2)?.kind, TokenKind::Ident(s) if s == "cfg");
    // Scan to the matching `]`, tracking whether `test` appears and
    // whether a `not` appears before it (treat `not(test)` as live).
    let mut depth = 1; // the `[`
    let mut j = i + 2;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, is_cfg && saw_test && !saw_not));
                }
            }
            TokenKind::Ident(s) if s == "test" => saw_test = true,
            TokenKind::Ident(s) if s == "not" && !saw_test => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    None // unterminated attribute; treat as not-an-attr
}

/// Starting just past an attribute, skip any further attributes and
/// then the gated item: through its matching `{...}` block, or through
/// a terminating `;` (e.g. `mod tests;`, `use ...;`), whichever comes
/// first at nesting depth zero.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    while let Some((end, _)) = parse_cfg_attr(tokens, i) {
        i = end;
    }
    // Also skip non-cfg attributes like `#[test]` / `#[allow(...)]`.
    while matches!(tokens.get(i).map(|t| &t.kind), Some(TokenKind::Punct('#')))
        && matches!(
            tokens.get(i + 1).map(|t| &t.kind),
            Some(TokenKind::Punct('['))
        )
    {
        let mut depth = 0;
        while i < tokens.len() {
            match tokens[i].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i += 1;
    }
    let mut paren = 0i32;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Punct(';') if paren == 0 => return i + 1,
            TokenKind::Punct('{') => {
                let mut depth = 0;
                while i < tokens.len() {
                    match tokens[i].kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_waivers(comments: &[Comment]) -> (Vec<Waiver>, Vec<(usize, String)>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // A directive must *start* the comment — prose that merely
        // mentions `marlin-lint:` mid-sentence (docs, this file) is not
        // a waiver.
        let Some(rest) = c.text.trim_start().strip_prefix("marlin-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = (|| -> Result<Waiver, String> {
            let body = rest
                .strip_prefix("allow(")
                .ok_or("expected `allow(<rule>, <reason>)`")?;
            let body = body
                .rfind(')')
                .map(|end| &body[..end])
                .ok_or("missing closing `)`")?;
            let (rule, reason) = body
                .split_once(',')
                .ok_or("missing reason: `allow(<rule>, <reason>)`")?;
            let (rule, reason) = (rule.trim(), reason.trim());
            if !ALL_RULES.contains(&rule) {
                return Err(format!("unknown rule `{rule}`"));
            }
            if reason.is_empty() {
                return Err("empty reason".to_string());
            }
            Ok(Waiver {
                rule: rule.to_string(),
                reason: reason.to_string(),
                line: c.line,
                trailing: c.trailing,
                used: false,
            })
        })();
        match parsed {
            Ok(w) => waivers.push(w),
            Err(e) => errors.push((c.line, e)),
        }
    }
    (waivers, errors)
}

/// Run every rule over the lexed files and fill `report`.
pub fn run_all(ctxs: &mut [FileCtx], cfg: &Config, report: &mut LintReport) {
    for ctx in ctxs.iter_mut() {
        for (line, err) in std::mem::take(&mut ctx.waiver_errors) {
            report.violations.push(Diagnostic {
                rule: BAD_WAIVER.to_string(),
                file: ctx.rel.clone(),
                line,
                message: format!("malformed marlin-lint directive: {err}"),
                severity: Severity::Error,
            });
        }
        no_hash_collections(ctx, cfg, report);
        no_wallclock(ctx, cfg, report);
        no_ambient_rng(ctx, cfg, report);
        no_panic_in_lib(ctx, cfg, report);
    }
    fork_label_uniqueness(ctxs, cfg, report);
    for ctx in ctxs.iter() {
        for w in &ctx.waivers {
            if !w.used {
                report.violations.push(Diagnostic {
                    rule: UNUSED_WAIVER.to_string(),
                    file: ctx.rel.clone(),
                    line: w.line,
                    message: format!(
                        "unused waiver (no `{}` finding on the covered line) — remove it",
                        w.rule
                    ),
                    severity: Severity::Warn,
                });
            }
        }
    }
}

fn allowed(cfg: &Config, rule: &str, rel: &str) -> bool {
    cfg.rule(rule)
        .allow
        .iter()
        .any(|p| rel == p.as_str() || rel.starts_with(&format!("{p}/")))
}

fn emit(
    ctx: &mut FileCtx,
    report: &mut LintReport,
    rule: &str,
    line: usize,
    message: String,
    severity: Severity,
) -> bool {
    if let Some(reason) = ctx.take_waiver(rule, line) {
        report.waived.push(Diagnostic {
            rule: rule.to_string(),
            file: ctx.rel.clone(),
            line,
            message: format!("{message} [waived: {reason}]"),
            severity,
        });
        false
    } else {
        report.violations.push(Diagnostic {
            rule: rule.to_string(),
            file: ctx.rel.clone(),
            line,
            message,
            severity,
        });
        true
    }
}

/// `HashMap`/`HashSet` in a deterministic crate's library code:
/// iteration order is seeded per-process, so any iteration leaks
/// nondeterminism into logs, digests, and traces.
fn no_hash_collections(ctx: &mut FileCtx, cfg: &Config, report: &mut LintReport) {
    if ctx.class != FileClass::Lib
        || !cfg
            .rule(NO_HASH_COLLECTIONS)
            .crates
            .contains(&ctx.crate_name)
    {
        return;
    }
    if allowed(cfg, NO_HASH_COLLECTIONS, &ctx.rel) {
        return;
    }
    let mut hits: Vec<(usize, String)> = Vec::new();
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.is_suppressed(i) {
            continue;
        }
        if let TokenKind::Ident(s) = &t.kind {
            if s == "HashMap" || s == "HashSet" {
                hits.push((t.line, s.clone()));
            }
        }
    }
    for (line, name) in hits {
        let fix = if name == "HashMap" {
            "BTreeMap"
        } else {
            "BTreeSet"
        };
        emit(
            ctx,
            report,
            NO_HASH_COLLECTIONS,
            line,
            format!(
                "`{name}` in deterministic crate `{}` — use `{fix}` or waive with a \
                 lookup-only justification",
                ctx.crate_name
            ),
            Severity::Error,
        );
    }
}

/// Wall-clock reads outside the measurement allowlist: virtual time is
/// the only clock deterministic code may observe.
fn no_wallclock(ctx: &mut FileCtx, cfg: &Config, report: &mut LintReport) {
    if ctx.class != FileClass::Lib || allowed(cfg, NO_WALLCLOCK, &ctx.rel) {
        return;
    }
    let mut hits: Vec<(usize, String)> = Vec::new();
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.is_suppressed(i) {
            continue;
        }
        if let TokenKind::Ident(s) = &t.kind {
            if s == "Instant" || s == "SystemTime" || s == "UNIX_EPOCH" {
                hits.push((t.line, s.clone()));
            }
        }
    }
    for (line, name) in hits {
        emit(
            ctx,
            report,
            NO_WALLCLOCK,
            line,
            format!(
                "`{name}` outside the wall-clock allowlist — deterministic code reads \
                 virtual time only (allowlist lives in lint.toml)"
            ),
            Severity::Error,
        );
    }
}

const AMBIENT_RNG_IDENTS: [&str; 9] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "RandomState",
    "DefaultHasher",
    "getrandom",
];

/// Ambient randomness: anything not derived from a labeled `DetRng`
/// fork breaks seed-replayability — in tests and examples too.
fn no_ambient_rng(ctx: &mut FileCtx, cfg: &Config, report: &mut LintReport) {
    if allowed(cfg, NO_AMBIENT_RNG, &ctx.rel) {
        return;
    }
    let mut hits: Vec<(usize, String)> = Vec::new();
    for t in &ctx.lexed.tokens {
        if let TokenKind::Ident(s) = &t.kind {
            if AMBIENT_RNG_IDENTS.contains(&s.as_str()) {
                hits.push((t.line, s.clone()));
            }
        }
    }
    for (line, name) in hits {
        emit(
            ctx,
            report,
            NO_AMBIENT_RNG,
            line,
            format!("`{name}` is ambient randomness — all streams must fork from `DetRng`"),
            Severity::Error,
        );
    }
}

/// One `.fork(<label>)` call site with a statically resolvable label.
#[derive(Clone, Debug)]
struct ForkSite {
    file_idx: usize,
    line: usize,
    label: u64,
    spelling: String,
}

/// Two forks of the same parent with the same label are *identical*
/// streams (fork is pure). That is documented behavior, but as a
/// static label it is almost always an accident — the PR 7 footgun —
/// so statically resolvable labels must be unique workspace-wide.
fn fork_label_uniqueness(ctxs: &mut [FileCtx], cfg: &Config, report: &mut LintReport) {
    let mut sites: Vec<ForkSite> = Vec::new();
    for (file_idx, ctx) in ctxs.iter().enumerate() {
        if ctx.class == FileClass::TestOrBench || allowed(cfg, FORK_LABEL_UNIQUENESS, &ctx.rel) {
            continue;
        }
        let consts = const_table(&ctx.lexed.tokens);
        let toks = &ctx.lexed.tokens;
        for i in 0..toks.len() {
            if ctx.is_suppressed(i) {
                continue;
            }
            // Pattern: `.` `fork` `(` <single-token label> `)`
            let dot = matches!(toks[i].kind, TokenKind::Punct('.'));
            let is_fork = matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == "fork");
            let open = matches!(
                toks.get(i + 2).map(|t| &t.kind),
                Some(TokenKind::Punct('('))
            );
            let close = matches!(
                toks.get(i + 4).map(|t| &t.kind),
                Some(TokenKind::Punct(')'))
            );
            if !(dot && is_fork && open && close) {
                continue;
            }
            let (label, spelling) = match toks.get(i + 3).map(|t| &t.kind) {
                Some(TokenKind::Int(s)) => match lexer::parse_int(s) {
                    Some(v) => (v, s.clone()),
                    None => continue,
                },
                Some(TokenKind::Ident(name)) => match consts.get(name.as_str()) {
                    Some(&v) => (v, name.clone()),
                    None => continue, // dynamic label; not statically checkable
                },
                _ => continue,
            };
            sites.push(ForkSite {
                file_idx,
                line: toks[i + 1].line,
                label,
                spelling,
            });
        }
    }
    let mut by_label: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (idx, site) in sites.iter().enumerate() {
        by_label.entry(site.label).or_default().push(idx);
    }
    for (label, group) in by_label {
        if group.len() < 2 {
            continue;
        }
        let locations: Vec<String> = group
            .iter()
            .map(|&i| {
                format!(
                    "{}:{} ({})",
                    ctxs[sites[i].file_idx].rel, sites[i].line, sites[i].spelling
                )
            })
            .collect();
        for &i in &group {
            let site = &sites[i];
            let others: Vec<&String> = locations
                .iter()
                .enumerate()
                .filter(|&(j, _)| group[j] != i)
                .map(|(_, l)| l)
                .collect();
            let message = format!(
                "`DetRng::fork({})` label {label} collides with {} — same label, same parent \
                 ⇒ identical stream; pick a fresh label",
                site.spelling,
                others
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let (file_idx, line) = (site.file_idx, site.line);
            emit(
                &mut ctxs[file_idx],
                report,
                FORK_LABEL_UNIQUENESS,
                line,
                message,
                Severity::Error,
            );
        }
    }
}

/// Build a `const NAME: <ty> = <int>;` table for one file.
fn const_table(tokens: &[Token]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for i in 0..tokens.len() {
        let is_const = matches!(&tokens[i].kind, TokenKind::Ident(s) if s == "const");
        if !is_const {
            continue;
        }
        let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) else {
            continue;
        };
        // Scan a short window for `= <int> ;`.
        for j in (i + 2)..tokens.len().min(i + 8) {
            if matches!(tokens[j].kind, TokenKind::Punct('=')) {
                if let Some(TokenKind::Int(s)) = tokens.get(j + 1).map(|t| &t.kind) {
                    if matches!(
                        tokens.get(j + 2).map(|t| &t.kind),
                        Some(TokenKind::Punct(';'))
                    ) {
                        if let Some(v) = lexer::parse_int(s) {
                            out.insert(name.clone(), v);
                        }
                    }
                }
                break;
            }
        }
    }
    out
}

/// Panic sites (`unwrap()`, `expect()`, `panic!`-family) in library
/// code. Warn severity: the count rides the `lint.toml` budget, which
/// only ratchets down.
fn no_panic_in_lib(ctx: &mut FileCtx, cfg: &Config, report: &mut LintReport) {
    if ctx.class != FileClass::Lib || allowed(cfg, NO_PANIC_IN_LIB, &ctx.rel) {
        return;
    }
    let mut hits: Vec<(usize, String)> = Vec::new();
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_suppressed(i) {
            continue;
        }
        match &toks[i].kind {
            TokenKind::Ident(s) if s == "unwrap" || s == "expect" => {
                let method = i > 0 && matches!(toks[i - 1].kind, TokenKind::Punct('.'));
                let called = matches!(
                    toks.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('('))
                );
                if method && called {
                    hits.push((toks[i].line, format!("{s}()")));
                }
            }
            TokenKind::Ident(s)
                if s == "panic" || s == "unreachable" || s == "todo" || s == "unimplemented" =>
            {
                if matches!(
                    toks.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('!'))
                ) {
                    hits.push((toks[i].line, format!("{s}!")));
                }
            }
            _ => {}
        }
    }
    for (line, what) in hits {
        let counted = emit(
            ctx,
            report,
            NO_PANIC_IN_LIB,
            line,
            format!(
                "`{what}` in library code — return a `Result`, or keep it with an \
                 invariant-stating `expect` and budget headroom"
            ),
            Severity::Warn,
        );
        if counted {
            report.panic_findings += 1;
        }
    }
}
