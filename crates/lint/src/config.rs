//! `lint.toml` parsing — a minimal, hand-rolled TOML subset.
//!
//! The build environment has no crates.io access, so instead of a TOML
//! crate this parses exactly the subset the lint configuration uses:
//! `[section]` headers, `key = <integer>`, `key = "<string>"`, and
//! `key = [ "a", "b" ]` string arrays (single- or multi-line).
//! Anything else is a hard configuration error — a config that cannot
//! be trusted must not silently weaken the gate.

use std::collections::BTreeMap;

/// Parsed configuration for one rule section.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// Root-relative path prefixes exempt from the rule.
    pub allow: Vec<String>,
    /// Crate names the rule is scoped to (rule-specific meaning).
    pub crates: Vec<String>,
    /// Ratchet budget (only meaningful for budgeted rules).
    pub budget: Option<u64>,
}

/// The whole `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Root-relative path prefixes excluded from every rule.
    pub exclude: Vec<String>,
    /// Per-rule sections, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Look up a rule section; absent sections behave as all-default.
    #[must_use]
    pub fn rule(&self, name: &str) -> RuleConfig {
        self.rules.get(name).cloned().unwrap_or_default()
    }
}

/// Parse `lint.toml` text. Errors carry a line number and reason.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section: Option<String> = None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            cfg.rules.entry(name.clone()).or_default();
            section = Some(name);
            continue;
        }
        let (key, mut value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", idx + 1))?;
        // Multi-line array: keep consuming lines until the closing `]`.
        while value.starts_with('[') && !value.ends_with(']') {
            let (_, cont) = lines
                .next()
                .ok_or_else(|| format!("lint.toml:{}: unterminated array", idx + 1))?;
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let parsed = parse_value(&value).map_err(|e| format!("lint.toml:{}: {e}", idx + 1))?;
        apply(&mut cfg, section.as_deref(), &key, parsed)
            .map_err(|e| format!("lint.toml:{}: {e}", idx + 1))?;
    }
    Ok(cfg)
}

enum Value {
    Int(u64),
    Strings(Vec<String>),
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(value: &str) -> Result<Value, String> {
    if let Some(body) = value.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            let s = part
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("array items must be quoted strings, got `{part}`"))?;
            items.push(s.to_string());
        }
        return Ok(Value::Strings(items));
    }
    if let Some(s) = value.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(Value::Strings(vec![s.to_string()]));
    }
    value
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{value}` (integer, string, or string array)"))
}

fn apply(cfg: &mut Config, section: Option<&str>, key: &str, value: Value) -> Result<(), String> {
    match (section, key, value) {
        (None, "exclude", Value::Strings(v)) => cfg.exclude = v,
        (Some(rule), "allow", Value::Strings(v)) => {
            cfg.rules.entry(rule.to_string()).or_default().allow = v;
        }
        (Some(rule), "crates", Value::Strings(v)) => {
            cfg.rules.entry(rule.to_string()).or_default().crates = v;
        }
        (Some(rule), "budget", Value::Int(n)) => {
            cfg.rules.entry(rule.to_string()).or_default().budget = Some(n);
        }
        (section, key, _) => {
            return Err(format!(
                "unknown key `{key}` in section {:?}",
                section.unwrap_or("<root>")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = parse(
            r#"
            # global excludes
            exclude = ["shims", "target"]

            [no-hash-collections]
            crates = ["core", "sim"]
            allow = []

            [no-panic-in-lib]
            budget = 42
            allow = [
                "crates/bench",  # multi-line with comment
            ]
            "#,
        )
        .expect("config must parse");
        assert_eq!(cfg.exclude, vec!["shims", "target"]);
        assert_eq!(cfg.rule("no-hash-collections").crates, vec!["core", "sim"]);
        assert_eq!(cfg.rule("no-panic-in-lib").budget, Some(42));
        assert_eq!(cfg.rule("no-panic-in-lib").allow, vec!["crates/bench"]);
        assert!(cfg.rule("absent").allow.is_empty());
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = parse("exclude = nonsense").expect_err("must fail");
        assert!(err.contains("lint.toml:1"), "{err}");
        let err = parse("[s]\nflag = true").expect_err("must fail");
        assert!(err.contains("unsupported value"), "{err}");
        let err = parse("[s]\nunknown = 3").expect_err("must fail");
        assert!(err.contains("unknown key"), "{err}");
    }
}
