//! marlin-lint: repo-specific determinism & hygiene static analysis.
//!
//! Every guarantee this repo sells — bit-identical decision logs across
//! runners, byte-identical traces per `(Scenario, seed)`, thread-count
//! independent fuzz digests — rests on determinism. This crate enforces
//! the determinism *preconditions* at build time instead of hoping a
//! 64-seed swarm trips over a violation later:
//!
//! | rule | invariant |
//! |---|---|
//! | `no-hash-collections` | no `HashMap`/`HashSet` in deterministic crates (iteration order is seeded per-process) |
//! | `no-wallclock` | `Instant`/`SystemTime` only in the measurement allowlist — virtual time never reads the wall |
//! | `no-ambient-rng` | all randomness flows from labeled `DetRng` forks |
//! | `fork-label-uniqueness` | no two static `DetRng::fork` labels collide (same label ⇒ identical stream — the PR 7 footgun) |
//! | `no-panic-in-lib` | `unwrap()`/`expect()`/`panic!` in library code ride a ratcheting budget |
//!
//! The analysis is a comment/string-aware token scan ([`lexer`]), not a
//! full parse: rules match identifier/punctuation patterns, skip
//! `#[cfg(test)]` modules, honor inline
//! `// marlin-lint: allow(<rule>, <reason>)` waivers, and read path
//! allowlists plus the panic budget from `lint.toml` ([`config`]).
//! `cargo run -p lint -- --check` is the CI gate.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How a diagnostic participates in the `--check` gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate outright.
    Error,
    /// Reported; gates only through the rule's budget (if any).
    Warn,
}

/// One finding, pinned to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that produced the finding.
    pub rule: String,
    /// Root-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Gate participation.
    pub severity: Severity,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warn => "warn",
        };
        write!(
            f,
            "{}:{}: {tag}[{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a tree.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Active findings (errors and budgeted warnings).
    pub violations: Vec<Diagnostic>,
    /// Findings silenced by an inline waiver, kept for audit.
    pub waived: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// `no-panic-in-lib` findings counted against the budget.
    pub panic_findings: usize,
    /// The configured panic budget.
    pub panic_budget: u64,
}

impl LintReport {
    /// Whether the `--check` gate passes: no error-severity findings
    /// and the panic count within budget.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations
            .iter()
            .all(|d| d.severity != Severity::Error)
            && self.panic_findings as u64 <= self.panic_budget
    }

    /// Serialize to JSON (hand-rolled; the build has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"panic_budget\": {{\"findings\": {}, \"budget\": {}}},\n",
            self.panic_findings, self.panic_budget
        ));
        for (key, list) in [("violations", &self.violations), ("waived", &self.waived)] {
            out.push_str(&format!("  \"{key}\": [\n"));
            for (i, d) in list.iter().enumerate() {
                let sev = match d.severity {
                    Severity::Error => "error",
                    Severity::Warn => "warn",
                };
                out.push_str(&format!(
                    "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"severity\": \"{sev}\", \"message\": {}}}{}\n",
                    json_str(&d.rule),
                    json_str(&d.file),
                    d.line,
                    json_str(&d.message),
                    if i + 1 == list.len() { "" } else { "," }
                ));
            }
            out.push_str(if key == "violations" {
                "  ],\n"
            } else {
                "  ]\n"
            });
        }
        out.push('}');
        out.push('\n');
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Load the configuration for `root` (`<root>/lint.toml`; a missing
/// file yields the all-default config so fixtures can opt out).
pub fn load_config(root: &Path) -> Result<config::Config, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(config::Config::default());
    }
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&text)
}

/// Lint the tree rooted at `root` with `cfg`.
pub fn run(root: &Path, cfg: &config::Config) -> Result<LintReport, String> {
    let mut files = Vec::new();
    walk(root, root, &cfg.exclude, &mut files)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    let mut ctxs = Vec::new();
    for rel in &files {
        let text =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        ctxs.push(rules::FileCtx::build(rel.clone(), &text));
    }
    let mut report = LintReport {
        files_scanned: ctxs.len(),
        panic_budget: cfg.rule(rules::NO_PANIC_IN_LIB).budget.unwrap_or(0),
        ..LintReport::default()
    };
    rules::run_all(&mut ctxs, cfg, &mut report);
    // Stable output order regardless of rule execution order.
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .waived
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Collect root-relative, `/`-separated paths of every `.rs` file,
/// skipping excluded prefixes plus `target/` and VCS internals.
fn walk(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_of(root, &path);
        if exclude
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
