//! marlin-lint CLI.
//!
//! ```text
//! cargo run -p lint -- [--check] [--root <dir>] [--json <path>]
//! ```
//!
//! - `--check` — exit non-zero when the gate fails (CI mode); without
//!   it the run only reports.
//! - `--root <dir>` — tree to lint (default `.`); reads `<dir>/lint.toml`.
//! - `--json <path>` — also write machine-readable diagnostics.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: lint [--check] [--root <dir>] [--json <path>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = match marlin_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("lint: configuration error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match marlin_lint::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Errors individually; warn findings summarized per file to keep CI
    // logs readable (full detail is in the JSON artifact).
    let mut warn_by_file: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &report.violations {
        match d.severity {
            marlin_lint::Severity::Error => println!("{d}"),
            marlin_lint::Severity::Warn => {
                *warn_by_file.entry(d.file.as_str()).or_insert(0) += 1;
            }
        }
    }
    for (file, count) in &warn_by_file {
        println!("{file}: {count} budgeted warning(s) (see --json for detail)");
    }
    let errors = report
        .violations
        .iter()
        .filter(|d| d.severity == marlin_lint::Severity::Error)
        .count();
    println!(
        "lint: {} file(s) scanned, {errors} error(s), {} waived, \
         no-panic-in-lib {}/{} budget",
        report.files_scanned,
        report.waived.len(),
        report.panic_findings,
        report.panic_budget
    );
    if report.panic_findings as u64 > report.panic_budget {
        println!(
            "lint: error: no-panic-in-lib findings ({}) exceed the lint.toml budget ({}) — \
             fix the new panic sites or (only when ratcheting legitimately) raise the budget",
            report.panic_findings, report.panic_budget
        );
    }

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if check && !report.ok() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("lint: {err}\nusage: lint [--check] [--root <dir>] [--json <path>]");
    ExitCode::from(2)
}
