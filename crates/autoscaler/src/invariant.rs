//! Structured invariant-violation reports for the control loop.
//!
//! The synchronous runtime checks the paper's I0–I4 invariants after
//! every control step (`LocalCluster::check_invariants`). Its violations
//! are raw [`marlin_core::invariants::Violation`] values tied to the
//! GTable model; this module lifts them into [`InvariantViolation`] — a
//! self-describing record (which invariant, which granule, which nodes,
//! when) that a fuzzing harness can collect, serialize into a repro
//! artifact, and compare across a shrink/replay cycle without dragging
//! the whole partition model along.

use marlin_common::{GranuleId, NodeId};
use marlin_core::invariants::Violation;
use marlin_sim::Nanos;
use std::fmt;

/// Which paper invariant (§4.5, Appendix A) a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantId {
    /// I2/"HasOneOwnership": a granule no node's own partition claims.
    I2HasOwner,
    /// I3/"NoDualOwnership": two nodes' own partitions both claim a
    /// granule.
    I3NoDual,
    /// I4/"RangeAgreement": two views disagree about a granule's
    /// immutable key range (metadata corruption).
    I4RangeAgreement,
}

impl InvariantId {
    /// Stable short name used in reports and repro artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InvariantId::I2HasOwner => "I2",
            InvariantId::I3NoDual => "I3",
            InvariantId::I4RangeAgreement => "I4",
        }
    }
}

/// One structured invariant violation: which invariant broke, on which
/// granule, which nodes were involved, and the control-loop time that
/// surfaced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke.
    pub invariant: InvariantId,
    /// The granule the violation is about.
    pub granule: GranuleId,
    /// The nodes involved (both claimants for I3; empty when no node is
    /// implicated, e.g. an orphaned granule).
    pub nodes: Vec<NodeId>,
    /// Virtual time of the control step whose check surfaced it.
    pub at: Nanos,
}

impl InvariantViolation {
    /// Lift a core model violation into the structured record, stamping
    /// it with the control-step time `at`.
    #[must_use]
    pub fn from_core(v: &Violation, at: Nanos) -> Self {
        match *v {
            Violation::NoOwner { granule } => InvariantViolation {
                invariant: InvariantId::I2HasOwner,
                granule,
                nodes: Vec::new(),
                at,
            },
            Violation::DualOwner { granule, a, b } => InvariantViolation {
                invariant: InvariantId::I3NoDual,
                granule,
                nodes: vec![a, b],
                at,
            },
            Violation::RangeMismatch { granule } => InvariantViolation {
                invariant: InvariantId::I4RangeAgreement,
                granule,
                nodes: Vec::new(),
                at,
            },
        }
    }

    /// Lift every violation of one check into structured records.
    #[must_use]
    pub fn from_core_all(violations: &[Violation], at: Nanos) -> Vec<Self> {
        violations
            .iter()
            .map(|v| InvariantViolation::from_core(v, at))
            .collect()
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} granule={} at={}ns",
            self.invariant.name(),
            self.granule.0,
            self.at
        )?;
        if !self.nodes.is_empty() {
            let ids: Vec<String> = self.nodes.iter().map(|n| n.0.to_string()).collect();
            write!(f, " nodes=[{}]", ids.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_violations_lift_to_structured_records() {
        let dual = Violation::DualOwner {
            granule: GranuleId(7),
            a: NodeId(1),
            b: NodeId(2),
        };
        let v = InvariantViolation::from_core(&dual, 5_000);
        assert_eq!(v.invariant, InvariantId::I3NoDual);
        assert_eq!(v.granule, GranuleId(7));
        assert_eq!(v.nodes, vec![NodeId(1), NodeId(2)]);
        assert_eq!(v.at, 5_000);
        assert_eq!(v.to_string(), "I3 granule=7 at=5000ns nodes=[1,2]");

        let orphan = Violation::NoOwner {
            granule: GranuleId(3),
        };
        let v = InvariantViolation::from_core(&orphan, 1);
        assert_eq!(v.invariant, InvariantId::I2HasOwner);
        assert!(v.nodes.is_empty());
        assert_eq!(v.to_string(), "I2 granule=3 at=1ns");

        let range = Violation::RangeMismatch {
            granule: GranuleId(9),
        };
        assert_eq!(
            InvariantViolation::from_core(&range, 0).invariant,
            InvariantId::I4RangeAgreement
        );
    }

    #[test]
    fn from_core_all_preserves_order() {
        let vs = vec![
            Violation::NoOwner {
                granule: GranuleId(0),
            },
            Violation::NoOwner {
                granule: GranuleId(1),
            },
        ];
        let lifted = InvariantViolation::from_core_all(&vs, 42);
        assert_eq!(lifted.len(), 2);
        assert_eq!(lifted[0].granule, GranuleId(0));
        assert_eq!(lifted[1].granule, GranuleId(1));
        assert!(lifted.iter().all(|v| v.at == 42));
    }
}
