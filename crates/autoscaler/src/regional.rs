//! Region-aware scaling: run an inner sizing policy per placement domain.
//!
//! [`RegionalPolicy`] is a decorator in the spirit of
//! [`CostBoundedPolicy`](crate::policy::CostBoundedPolicy): it owns one
//! independent instance of an inner [`ScalingPolicy`] per region and, on
//! every tick, shows each instance a [region view] of the observation —
//! the same summary fields a region-blind policy reads, restricted to the
//! nodes placed in that region. Decisions come back region-targeted:
//!
//! - scale-outs are rewritten to `AddNodes { count, region: Some(r) }`,
//!   so the runner provisions capacity *where the load is* (the
//!   *Diagonal Scaling* stance: elasticity decisions are per placement
//!   domain, not per cluster);
//! - scale-ins inherit region-local victim selection for free, because
//!   the region view's `coolest_live_nodes` only ever ranks that
//!   region's members — a drain triggered by one region's idleness can
//!   never evict another region's capacity;
//! - the coordination-service region (the region baselines pin their
//!   external service in, §6.5) can be given a floor: forced drains are
//!   clipped so it never drops below the floor, keeping the service's
//!   co-located quorum reachable.
//!
//! At most one action is emitted per tick — the controller contract —
//! so regions are visited hottest-first: a saturated region's scale-out
//! wins the tick and a cool region's drain waits for the next one.
//!
//! [region view]: crate::observe::Observation::region_view

use crate::observe::Observation;
use crate::policy::{ScaleAction, ScalingPolicy};
use marlin_common::RegionId;

/// Per-region decoration of an inner sizing policy.
pub struct RegionalPolicy {
    /// One independent inner policy per region, in region order.
    inner: Vec<(RegionId, Box<dyn ScalingPolicy>)>,
    /// `(region, floor)`: never drain this region below `floor` members.
    coordination_floor: Option<(RegionId, u32)>,
}

impl RegionalPolicy {
    /// A regional policy over `regions` placement domains, with one inner
    /// policy per region built by `make` (instances must be independent —
    /// each carries its own cooldown/integral state).
    #[must_use]
    pub fn new(regions: u16, mut make: impl FnMut(RegionId) -> Box<dyn ScalingPolicy>) -> Self {
        assert!(regions > 0, "at least one region");
        RegionalPolicy {
            inner: (0..regions)
                .map(|r| (RegionId(r), make(RegionId(r))))
                .collect(),
            coordination_floor: None,
        }
    }

    /// Protect the coordination-service region: clip any drain of
    /// `region` so it keeps at least `floor` live members.
    #[must_use]
    pub fn with_coordination_floor(mut self, region: RegionId, floor: u32) -> Self {
        self.coordination_floor = Some((region, floor));
        self
    }
}

impl ScalingPolicy for RegionalPolicy {
    fn name(&self) -> &'static str {
        "regional"
    }

    fn decide(&mut self, obs: &Observation) -> Option<ScaleAction> {
        // Build every region's view up front, then visit regions
        // hottest-first (ties by region id) so the most urgent scale-out
        // claims the tick's one action. Once a region has claimed it the
        // remaining regions still *see* their views through
        // `observe_only`, so stateful inner policies (forecasters) never
        // miss a sample of their region's demand series.
        let views: Vec<Observation> = self
            .inner
            .iter()
            .map(|(r, _)| obs.region_view(*r))
            .collect();
        let mut order: Vec<usize> = (0..self.inner.len()).collect();
        order.sort_by(|&a, &b| {
            views[b]
                .mean_utilization
                .total_cmp(&views[a].mean_utilization)
                .then_with(|| self.inner[a].0 .0.cmp(&self.inner[b].0 .0))
        });
        let mut chosen: Option<ScaleAction> = None;
        for idx in order {
            let view = &views[idx];
            let (region, policy) = &mut self.inner[idx];
            if chosen.is_some() || view.live_nodes == 0 {
                // A region with no capacity yet has nothing to size (the
                // scenario — or a predictive policy — seeds it), and a
                // region visited after the tick's action only observes.
                policy.observe_only(view);
                continue;
            }
            match policy.decide(view) {
                Some(ScaleAction::AddNodes { count, .. }) => {
                    chosen = Some(ScaleAction::add_in(count, *region));
                }
                Some(ScaleAction::RemoveNodes { mut victims }) => {
                    if let Some((coord, floor)) = self.coordination_floor {
                        if *region == coord {
                            let max_shed = view.live_nodes.saturating_sub(floor) as usize;
                            victims.truncate(max_shed);
                        }
                    }
                    if victims.is_empty() {
                        continue;
                    }
                    chosen = Some(ScaleAction::RemoveNodes { victims });
                }
                Some(other @ ScaleAction::Rebalance { .. }) => chosen = Some(other),
                None => {}
            }
        }
        chosen
    }

    fn observe_only(&mut self, obs: &Observation) {
        for (region, policy) in &mut self.inner {
            policy.observe_only(&obs.region_view(*region));
        }
    }

    fn forecasts(&self) -> Vec<crate::forecast::ForecastSample> {
        self.inner
            .iter()
            .flat_map(|(region, policy)| {
                policy.forecasts().into_iter().map(|mut s| {
                    s.region.get_or_insert(*region);
                    s
                })
            })
            .collect()
    }

    fn p99_ceiling(&self) -> Option<marlin_sim::Nanos> {
        // The per-region instances are built identically, so the first
        // armed ceiling is *the* SLO.
        self.inner.iter().find_map(|(_, p)| p.p99_ceiling())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NodeLoad;
    use crate::policy::{ReactiveConfig, ReactivePolicy};
    use marlin_common::NodeId;

    fn regional(regions: u16, min: u32, max: u32) -> RegionalPolicy {
        RegionalPolicy::new(regions, |_| {
            Box::new(ReactivePolicy::new(ReactiveConfig {
                cooldown: 0,
                ..ReactiveConfig::paper_default(min, max)
            }))
        })
    }

    /// `nodes[i]` nodes in region `i`, at `utils[i]` utilization each.
    fn obs(nodes: &[u32], utils: &[f64]) -> Observation {
        let mut node_loads = Vec::new();
        let mut id = 0;
        for (r, (&n, &u)) in nodes.iter().zip(utils).enumerate() {
            for _ in 0..n {
                node_loads.push(NodeLoad {
                    node: NodeId(id),
                    region: RegionId(r as u16),
                    utilization: u,
                    owned_granules: 1,
                    ..NodeLoad::default()
                });
                id += 1;
            }
        }
        let live = node_loads.len() as u32;
        let mut o = Observation {
            live_nodes: live,
            node_loads,
            ..Observation::default()
        };
        o.derive_region_loads();
        o
    }

    #[test]
    fn scale_out_targets_the_hot_region_only() {
        let mut p = regional(3, 2, 4);
        // Region 1 saturated, the others idle but at their floor.
        let action = p.decide(&obs(&[2, 2, 2], &[0.5, 0.95, 0.5]));
        assert_eq!(action, Some(ScaleAction::add_in(2, RegionId(1))));
    }

    #[test]
    fn drains_pick_the_cool_regions_coolest_node() {
        let mut p = regional(2, 1, 4);
        // Region 0 (nodes 0-2) busy; region 1 (nodes 3-5) idle.
        let mut o = obs(&[3, 3], &[0.6, 0.1]);
        o.node_loads[4].utilization = 0.02; // node 4 is region 1's coolest
        match p.decide(&o) {
            Some(ScaleAction::RemoveNodes { victims }) => {
                assert_eq!(victims[0], NodeId(4), "region-local coolest drains first");
                assert!(
                    victims.iter().all(|v| v.0 >= 3),
                    "victims must come from the idle region: {victims:?}"
                );
            }
            other => panic!("expected a region-local drain, got {other:?}"),
        }
    }

    #[test]
    fn hot_region_wins_the_tick_over_a_cool_regions_drain() {
        let mut p = regional(2, 1, 8);
        // Region 0 idle (would drain), region 1 saturated (must grow).
        let action = p.decide(&obs(&[3, 2], &[0.1, 0.95]));
        assert!(
            matches!(
                action,
                Some(ScaleAction::AddNodes {
                    region: Some(RegionId(1)),
                    ..
                })
            ),
            "the scale-out takes priority: {action:?}"
        );
    }

    #[test]
    fn coordination_region_never_drains_below_its_floor() {
        let mut p = regional(2, 1, 8).with_coordination_floor(RegionId(0), 3);
        // Region 0 idle at 3 nodes — its inner policy wants a drain, but
        // the floor clips it to nothing; region 1 is quiet mid-band.
        let action = p.decide(&obs(&[3, 2], &[0.1, 0.5]));
        assert_eq!(action, None, "the floor must veto the drain");
        // Above the floor the drain goes through, clipped to the floor.
        let mut p = regional(2, 1, 8).with_coordination_floor(RegionId(0), 3);
        match p.decide(&obs(&[4, 2], &[0.1, 0.5])) {
            Some(ScaleAction::RemoveNodes { victims }) => {
                assert_eq!(victims.len(), 1, "only the excess over the floor sheds");
                assert!(victims[0].0 < 4, "victim comes from region 0");
            }
            other => panic!("expected a clipped drain, got {other:?}"),
        }
    }

    #[test]
    fn one_regions_p99_breach_does_not_scale_idle_regions() {
        use crate::policy::ScaleAction;
        // Regression: region_view used to inherit the *global* p99 into
        // every region's view, so a latency-triggered policy would buy
        // capacity in idle regions whenever the hot region was slow.
        let mut p = RegionalPolicy::new(2, |_| {
            let mut cfg = ReactiveConfig::paper_default(2, 8);
            cfg.p99_ceiling = Some(50 * marlin_sim::MILLISECOND);
            cfg.cooldown = 10 * marlin_sim::SECOND;
            Box::new(ReactivePolicy::new(cfg))
        });
        // Region 0 mid-band but latency-breached; region 1 idle and fast.
        // The observation carries per-region digests (as runners fill
        // them), with the global p99 dominated by region 0.
        let mut o = obs(&[2, 2], &[0.6, 0.4]);
        o.p99_latency = 80 * marlin_sim::MILLISECOND;
        o.derive_region_loads();
        for r in &mut o.region_loads {
            r.p99_latency = if r.region == RegionId(0) {
                80 * marlin_sim::MILLISECOND
            } else {
                5 * marlin_sim::MILLISECOND
            };
        }
        let action = p.decide(&o);
        assert_eq!(
            action,
            Some(ScaleAction::add_in(2, RegionId(0))),
            "only the latency-breached region scales"
        );
        // And the idle region stays quiet on the next tick too.
        let action = p.decide(&o);
        assert_eq!(action, None, "region 1's own p99 is fine: {action:?}");
    }

    #[test]
    fn per_region_cooldowns_are_independent() {
        let mut p = RegionalPolicy::new(2, |_| {
            Box::new(ReactivePolicy::new(ReactiveConfig {
                cooldown: 100 * marlin_sim::SECOND,
                ..ReactiveConfig::paper_default(1, 8)
            }))
        });
        // Region 0 scales out at t=0 and enters its cooldown.
        let mut o = obs(&[2, 2], &[0.95, 0.5]);
        assert_eq!(p.decide(&o), Some(ScaleAction::add_in(1, RegionId(0))));
        // One tick later region 1 saturates: its own policy is fresh and
        // must act even though region 0's is cooling down.
        o.at = marlin_sim::SECOND;
        for n in &mut o.node_loads {
            n.utilization = if n.region == RegionId(1) { 0.95 } else { 0.9 };
        }
        o.derive_region_loads();
        assert_eq!(
            p.decide(&o),
            Some(ScaleAction::add_in(1, RegionId(1))),
            "region 1's cooldown is its own"
        );
    }
}
