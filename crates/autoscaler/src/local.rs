//! Synchronous-runtime integration: drive a [`LocalCluster`] with the
//! controller.
//!
//! [`LocalHarness`] is the [`Actuator`] for the functional reference
//! runtime. Every action executes *real* reconfiguration transactions
//! through the sans-io drivers in `marlin_core::drivers::reconfig`:
//! `AddNodeTxn` for scale-out, per-granule `MigrationTxn`s for draining
//! and rebalancing, and `DeleteNodeTxn` once a victim is empty. Because
//! the runtime is synchronous, actions complete before `tick` returns and
//! invariants can be asserted after every control step — this is the
//! harness the policy end-to-end tests run against.
//!
//! The runtime has no clock or load generator of its own, so observations
//! take the offered load as an input: [`LocalHarness::observe`] combines
//! the caller's exogenous demand signal with the *real* granule placement
//! (from each node's materialized GTable partition) to produce the same
//! [`Observation`] shape the simulator emits.

use crate::controller::Actuator;
use crate::invariant::InvariantViolation;
use crate::observe::{GranuleLoad, NodeLoad, Observation};
use crate::rebalance::GranuleMove;
use marlin_common::{ClusterConfig, GranuleId, GranuleLayout, KeyRange, NodeId, RegionId, TableId};
use marlin_core::runtime::LocalCluster;
use marlin_sim::Nanos;
use std::collections::BTreeMap;

/// A [`LocalCluster`] plus the bookkeeping the controller needs.
pub struct LocalHarness {
    /// The cluster under control.
    pub cluster: LocalCluster,
    table: TableId,
    members: Vec<NodeId>,
    next_node: u32,
    /// Placement domains (1 = the single-region default).
    num_regions: u16,
    /// Region each member (live or past) was placed in.
    regions: BTreeMap<NodeId, RegionId>,
    /// Region each granule is *homed* in: the region of its bootstrap
    /// owner. Geo deployments keep clients local (§6.5), so a granule's
    /// load always comes from its home region's demand no matter which
    /// node currently serves it.
    granule_home: Vec<RegionId>,
    /// $/hour per node, for cost-bounded policies.
    pub node_hourly: f64,
}

impl LocalHarness {
    /// Bootstrap a cluster of `initial_nodes` nodes owning `granules`
    /// granules of one uniform table.
    #[must_use]
    pub fn bootstrap(initial_nodes: u32, granules: u64) -> Self {
        let table = TableId(0);
        let cluster = LocalCluster::bootstrap(&ClusterConfig {
            initial_nodes: (0..initial_nodes).map(NodeId).collect(),
            tables: vec![GranuleLayout::uniform(
                table,
                KeyRange::new(0, granules * 64),
                granules,
                64 * 1024,
                1024,
            )],
            ..ClusterConfig::default()
        });
        LocalHarness {
            cluster,
            table,
            members: (0..initial_nodes).map(NodeId).collect(),
            next_node: initial_nodes,
            num_regions: 1,
            regions: (0..initial_nodes)
                .map(|i| (NodeId(i), RegionId(0)))
                .collect(),
            granule_home: vec![RegionId(0); granules as usize],
            node_hourly: 0.192,
        }
    }

    /// Spread the bootstrap members across `regions` placement domains
    /// round-robin (node `i` → region `i % regions`, the simulator's
    /// rule) and home every granule in its initial owner's region. Call
    /// right after [`LocalHarness::bootstrap`], before any scaling.
    #[must_use]
    pub fn with_regions(mut self, regions: u16) -> Self {
        assert!(regions > 0, "at least one region");
        self.num_regions = regions;
        self.regions = self
            .members
            .iter()
            .map(|&m| (m, RegionId(m.0 as u16 % regions)))
            .collect();
        for &m in &self.members {
            let region = self.regions[&m];
            for g in self.cluster.node(m).marlin.owned_granules() {
                if let Some(home) = self.granule_home.get_mut(g.0 as usize) {
                    *home = region;
                }
            }
        }
        self
    }

    /// Current live members.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The region a member was placed in (`RegionId(0)` when unknown).
    #[must_use]
    pub fn region_of(&self, node: NodeId) -> RegionId {
        self.regions.get(&node).copied().unwrap_or(RegionId(0))
    }

    /// The region each granule is homed in.
    #[must_use]
    pub fn granule_home(&self, granule: GranuleId) -> RegionId {
        self.granule_home
            .get(granule.0 as usize)
            .copied()
            .unwrap_or(RegionId(0))
    }

    /// Granule counts per live member, from the real GTable partitions.
    #[must_use]
    pub fn owned_counts(&self) -> BTreeMap<NodeId, u64> {
        self.members
            .iter()
            .map(|&m| (m, self.cluster.node(m).marlin.owned_granules().len() as u64))
            .collect()
    }

    /// Synthesize an observation at logical time `at` under an exogenous
    /// demand of `offered_load` node-capacity units, spread over members
    /// proportionally to how many granules each owns (uniform access).
    #[must_use]
    pub fn observe(&self, at: Nanos, offered_load: f64) -> Observation {
        self.observe_with(at, offered_load, |_| 1.0)
    }

    /// Synthesize an observation with a custom per-granule access weight.
    ///
    /// `weight(granule)` gives each granule's relative share of the
    /// offered load (weights are normalized over all granules), so skewed
    /// workloads — e.g. a Zipfian heat profile — show up as per-node
    /// utilization imbalance and per-granule heat, exactly as the
    /// simulator's sampled counters would report them.
    ///
    /// `offered_load` is the *cluster-wide* demand; multi-region
    /// harnesses split it over regions by each region's weight share
    /// (use [`LocalHarness::observe_regions`] for an explicit per-region
    /// demand signal).
    #[must_use]
    pub fn observe_with(
        &self,
        at: Nanos,
        offered_load: f64,
        weight: impl Fn(GranuleId) -> f64,
    ) -> Observation {
        // Split the global demand by region weight share: region r's
        // offered load is `offered × w(r)/w(total)`, which makes the
        // per-node math in `observe_regions` identical to spreading the
        // global demand over all granules directly.
        let owned: Vec<GranuleId> = self
            .members
            .iter()
            .flat_map(|&m| self.cluster.node(m).marlin.owned_granules())
            .collect();
        let mut per_region = vec![0.0f64; self.num_regions as usize];
        let total: f64 = owned.iter().map(|&g| weight(g)).sum();
        if total > 0.0 {
            for &g in &owned {
                per_region[self.granule_home(g).0 as usize] += weight(g);
            }
            for w in &mut per_region {
                *w = offered_load * *w / total;
            }
        }
        self.observe_regions(at, &per_region, weight)
    }

    /// Synthesize an observation under an explicit per-region demand:
    /// `offered_by_region[r]` node-capacity units hit the granules homed
    /// in region `r` (weighted by `weight` within the region), landing on
    /// whichever nodes currently own them. This is the geo analogue of
    /// [`LocalHarness::observe_with`]: region-local spikes show up as
    /// utilization on that region's members only, exactly as the
    /// simulator's region-pinned clients would drive it.
    #[must_use]
    pub fn observe_regions(
        &self,
        at: Nanos,
        offered_by_region: &[f64],
        weight: impl Fn(GranuleId) -> f64,
    ) -> Observation {
        assert_eq!(
            offered_by_region.len(),
            self.num_regions as usize,
            "one offered-load entry per region"
        );
        let owned_by: BTreeMap<NodeId, Vec<GranuleId>> = self
            .members
            .iter()
            .map(|&m| (m, self.cluster.node(m).marlin.owned_granules()))
            .collect();
        // Per-region total weights over *owned* granules, so each
        // region's demand is normalized within the granules it can hit.
        let mut region_weight = vec![f64::MIN_POSITIVE; self.num_regions as usize];
        for gs in owned_by.values() {
            for &g in gs {
                region_weight[self.granule_home(g).0 as usize] += weight(g);
            }
        }
        let granule_share = |g: GranuleId| {
            let r = self.granule_home(g).0 as usize;
            offered_by_region[r] * weight(g) / region_weight[r]
        };
        let node_loads: Vec<NodeLoad> = owned_by
            .iter()
            .map(|(&node, granules)| NodeLoad {
                node,
                region: self.region_of(node),
                alive: true,
                pending: false,
                utilization: granules.iter().map(|&g| granule_share(g)).sum(),
                owned_granules: granules.len() as u64,
            })
            .collect();
        // Same observation semantics as `ClusterSim::observe`: per-node
        // utilization in `node_loads` is raw (may exceed 1 under
        // overload), the mean is clamped to the `[0, 1]` contract, and
        // the excess shows up only in `queue_depth` — never in both.
        let (mean_utilization, queue_depth) = if node_loads.is_empty() {
            (0.0, 0.0)
        } else {
            let n = node_loads.len() as f64;
            let mean = node_loads
                .iter()
                .map(|l| l.utilization.min(1.0))
                .sum::<f64>()
                / n;
            let excess = node_loads
                .iter()
                .map(|l| (l.utilization - 1.0).max(0.0))
                .sum::<f64>()
                / n;
            (mean, excess)
        };
        // Granule heat mirrors the access-weight assumption: every owned
        // granule carries its weighted share of its home region's demand.
        let granule_loads: Vec<GranuleLoad> = owned_by
            .iter()
            .flat_map(|(&m, granules)| granules.iter().map(move |&granule| (m, granule)))
            .map(|(owner, granule)| GranuleLoad {
                granule,
                owner,
                load: granule_share(granule),
            })
            .collect();
        let mut obs = Observation {
            at,
            live_nodes: self.members.len() as u32,
            throughput_tps: 0.0,
            p99_latency: 0,
            mean_utilization,
            queue_depth,
            dollars_per_hour: self.members.len() as f64 * self.node_hourly,
            node_loads,
            region_loads: Vec::new(),
            granule_loads,
        };
        obs.derive_region_loads();
        obs
    }

    /// Crash `victim` and run the paper's §4.4.2 recovery end to end: the
    /// node is killed, a surviving coordinator commits a `RecoveryMigrTxn`
    /// onto the dead node's GLog to take over its granules, and a
    /// `DeleteNodeTxn` removes it from the membership.
    ///
    /// Crashing a non-member or the last member is a no-op (there would
    /// be no survivor to recover onto) — the same guard the simulator
    /// applies, so the two runners stay fault-for-fault comparable.
    pub fn crash(&mut self, victim: NodeId) {
        if !self.members.contains(&victim) {
            return;
        }
        let survivors = self.survivors(&[victim]);
        let Some(&coordinator) = survivors.first() else {
            return;
        };
        self.cluster.kill(victim);
        let orphans = self.cluster.node(victim).marlin.owned_granules();
        if !orphans.is_empty() {
            self.cluster
                .recovery_migrate(coordinator, victim, orphans)
                .expect("RecoveryMigrTxn commits on the dead node's GLog");
        }
        self.cluster
            .delete_node(coordinator, victim)
            .expect("DeleteNodeTxn removes the dead member");
        self.members.retain(|&m| m != victim);
    }

    /// Run the I0–I4 invariant checks and surface violations as values,
    /// stamped with the control-step time `at`.
    ///
    /// This is the non-panicking face of
    /// `LocalCluster::assert_invariants`, built for harnesses (the
    /// scenario fuzzer in particular) that want to *collect* violations
    /// into a report or repro artifact instead of unwinding mid-run.
    ///
    /// # Errors
    ///
    /// Returns every [`InvariantViolation`] found in the current GTable
    /// views, in deterministic (granule-ordered) order.
    pub fn check_invariants(&self, at: Nanos) -> Result<(), Vec<InvariantViolation>> {
        match self.cluster.check_invariants() {
            Ok(()) => Ok(()),
            Err(raw) => Err(InvariantViolation::from_core_all(&raw, at)),
        }
    }

    /// The least-loaded live members excluding `not`, round-robin targets
    /// for drains.
    fn survivors(&self, not: &[NodeId]) -> Vec<NodeId> {
        let counts = self.owned_counts();
        let mut survivors: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|m| !not.contains(m))
            .collect();
        survivors.sort_by_key(|m| counts.get(m).copied().unwrap_or(0));
        survivors
    }
}

impl Actuator for LocalHarness {
    fn add_nodes(&mut self, _at: Nanos, count: u32, region: Option<RegionId>) {
        // AddNodeTxn for each new member, then a balanced drain of excess
        // granules from the old members onto the new ones (the same shape
        // `ClusterSim::schedule_scale_out` uses, executed synchronously).
        // A region-targeted add drains only from that region's members,
        // so the new capacity absorbs the hot region's granules instead
        // of pulling load across regions.
        let old_members: Vec<NodeId> = match region {
            Some(r) => self
                .members
                .iter()
                .copied()
                .filter(|&m| self.region_of(m) == r)
                .collect(),
            None => self.members.clone(),
        };
        let mut new_members = Vec::new();
        for _ in 0..count {
            let id = NodeId(self.next_node);
            self.next_node += 1;
            self.cluster
                .add_node(id, format!("10.0.0.{}", id.0))
                .expect("AddNodeTxn succeeds on a live SysLog");
            self.members.push(id);
            let placed = region.unwrap_or(RegionId(id.0 as u16 % self.num_regions));
            self.regions.insert(id, placed);
            new_members.push(id);
        }
        if new_members.is_empty() || old_members.is_empty() {
            return;
        }
        // Balance within the drained pool: every pool member (old + new)
        // ends near pool_granules / pool_size.
        let counts = self.owned_counts();
        let total: u64 = old_members
            .iter()
            .map(|m| counts.get(m).copied().unwrap_or(0))
            .sum();
        let target = total / (old_members.len() + new_members.len()) as u64;
        let mut rr = 0usize;
        for src in old_members {
            let src_region = self.region_of(src);
            let owned = self.cluster.node(src).marlin.owned_granules();
            let excess = (owned.len() as u64).saturating_sub(target) as usize;
            for granule in owned.into_iter().rev().take(excess) {
                // Round-robin over joining nodes, preferring one in the
                // source's region (the same probe the simulator's
                // balanced plan uses) so an untargeted geo add never
                // ships granules out of their home region.
                let mut pick = None;
                for probe in 0..new_members.len() {
                    let cand = (rr + probe) % new_members.len();
                    if self.region_of(new_members[cand]) == src_region {
                        pick = Some(cand);
                        break;
                    }
                }
                let cand = pick.unwrap_or(rr % new_members.len());
                rr = cand + 1;
                let dst = new_members[cand];
                self.cluster
                    .migrate(src, dst, self.table, vec![granule])
                    .expect("scale-out migration succeeds between live nodes");
            }
        }
    }

    fn remove_nodes(&mut self, _at: Nanos, victims: &[NodeId]) {
        let survivors = self.survivors(victims);
        assert!(
            !survivors.is_empty(),
            "scale-in must leave at least one member"
        );
        let mut rr = 0usize;
        for &victim in victims {
            if !self.members.contains(&victim) {
                continue;
            }
            // Drains stay region-local where possible: a victim's
            // granules land on survivors in its own region, falling back
            // to the whole survivor set only when the drain empties the
            // region entirely.
            let local: Vec<NodeId> = survivors
                .iter()
                .copied()
                .filter(|&s| self.region_of(s) == self.region_of(victim))
                .collect();
            let pool: &[NodeId] = if local.is_empty() { &survivors } else { &local };
            // Drain: one MigrationTxn per granule onto the survivors.
            for granule in self.cluster.node(victim).marlin.owned_granules() {
                let dst = pool[rr % pool.len()];
                rr += 1;
                self.cluster
                    .migrate(victim, dst, self.table, vec![granule])
                    .expect("drain migration succeeds between live nodes");
            }
            // DeleteNodeTxn once empty.
            self.cluster
                .delete_node(survivors[0], victim)
                .expect("DeleteNodeTxn succeeds for a drained member");
            self.members.retain(|&m| m != victim);
        }
    }

    fn rebalance(&mut self, _at: Nanos, moves: &[GranuleMove]) {
        for m in moves {
            // A stale plan (ownership moved since the observation) aborts
            // on the data-effectiveness check; that is the protocol doing
            // its job, not a harness error.
            let _ = self
                .cluster
                .migrate(m.src, m.dst, self.table, vec![m.granule]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Controller;
    use crate::policy::{ReactiveConfig, ReactivePolicy, ScaleAction};
    use crate::rebalance::{RebalanceConfig, RebalancePlanner};

    fn controller(min: u32, max: u32) -> Controller {
        Controller::new(Box::new(ReactivePolicy::new(ReactiveConfig {
            cooldown: 0,
            ..ReactiveConfig::paper_default(min, max)
        })))
    }

    #[test]
    fn spike_scales_out_and_back_preserving_invariants() {
        let mut harness = LocalHarness::bootstrap(4, 32);
        let mut c = controller(4, 8);
        // Load trace in offered node-capacity units: calm, spike, calm.
        let trace = [2.0, 2.0, 7.5, 7.5, 7.5, 2.0, 2.0, 2.0];
        let mut sizes = Vec::new();
        for (tick, &load) in trace.iter().enumerate() {
            let obs = harness.observe(tick as Nanos * marlin_sim::SECOND, load);
            c.tick(&obs, &mut harness);
            harness.cluster.assert_invariants();
            sizes.push(harness.members().len());
        }
        assert!(
            sizes.contains(&8),
            "the spike must double the cluster: {sizes:?}"
        );
        assert_eq!(*sizes.last().unwrap(), 4, "calm must drain back: {sizes:?}");
        // Drained members really left the membership (MTable agrees).
        let survivors = harness.members().to_vec();
        assert_eq!(survivors.len(), 4);
    }

    #[test]
    fn scale_out_spreads_granules_onto_new_members() {
        let mut harness = LocalHarness::bootstrap(2, 16);
        harness.add_nodes(0, 2, None);
        harness.cluster.assert_invariants();
        let counts = harness.owned_counts();
        assert_eq!(counts.len(), 4);
        for (&node, &count) in &counts {
            assert!(count >= 2, "node {node:?} ended with {count} granules");
        }
    }

    #[test]
    fn rebalance_moves_apply_through_migration_txns() {
        let mut harness = LocalHarness::bootstrap(3, 9);
        let obs = harness.observe(0, 1.0);
        let planner = RebalancePlanner::new(RebalanceConfig {
            imbalance_threshold: 0.0,
            max_moves: 4,
        });
        // Skew the heat artificially so the planner has something to do.
        let mut skewed = obs.clone();
        for g in &mut skewed.granule_loads {
            if g.owner == NodeId(0) {
                g.load *= 10.0;
            }
        }
        let moves = planner.plan(&skewed);
        harness.rebalance(0, &moves);
        harness.cluster.assert_invariants();
    }

    #[test]
    fn history_records_every_action() {
        let mut harness = LocalHarness::bootstrap(4, 32);
        let mut c = controller(4, 8);
        let obs = harness.observe(0, 7.0);
        let action = c.tick(&obs, &mut harness);
        assert!(matches!(action, Some(ScaleAction::AddNodes { .. })));
        assert_eq!(c.history().len(), 1);
    }
}
