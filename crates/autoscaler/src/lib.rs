//! # marlin-autoscaler — the closed-loop autoscaling controller
//!
//! The paper's coordination layer makes reconfiguration *cheap*; this
//! crate decides *when* to reconfigure. It closes the loop the scenario
//! scripts used to hard-code: instead of replaying scale events at fixed
//! timestamps, a controller observes the running cluster and emits the
//! same reconfiguration transactions (`AddNodeTxn`, `MigrationTxn`,
//! `DeleteNodeTxn`) the scripts did — now as a function of measured load
//! and spend.
//!
//! ## The observe → decide → actuate loop
//!
//! ```text
//!        ┌────────────────────────────────────────────────┐
//!        │                  runner                        │
//!        │  (LocalCluster · ClusterSim)                   │
//!        └───────┬────────────────────────────▲───────────┘
//!        observe │                            │ actuate
//!                ▼                            │
//!        [`Observation`] ──decide──▶ [`ScaleAction`] ──▶ [`Actuator`]
//!                   (a [`ScalingPolicy`] + optional
//!                      [`RebalancePlanner`])
//! ```
//!
//! - **Observe** — the runner produces an [`Observation`]: live node
//!   count, windowed throughput and p99 latency, per-node CPU
//!   utilization, queue depth, the current $/hour burn rate (from the
//!   §6.1.5 cost model), and sampled per-granule heat.
//! - **Decide** — a [`ScalingPolicy`] maps the observation to at most one
//!   [`ScaleAction`] per tick. Shipped policies: reactive thresholds with
//!   hysteresis + cooldown ([`ReactivePolicy`]), a PI-style utilization
//!   tracker ([`TargetUtilizationPolicy`]), a hard budget decorator
//!   ([`CostBoundedPolicy`]), a per-region decorator
//!   ([`RegionalPolicy`]) that runs an inner sizing policy per placement
//!   domain and emits region-targeted actions with region-local victim
//!   selection, and a *proactive* sizing policy ([`PredictivePolicy`])
//!   that forecasts the demand signal (see [`forecast`]) and sizes the
//!   cluster for demand a provisioning-lead-time ahead, falling back to
//!   its inner reactive policy when the rolling forecast error exceeds a
//!   guard threshold. On quiet ticks the optional
//!   [`RebalancePlanner`] proposes hot-granule `MigrationTxn`s instead.
//! - **Actuate** — the [`Controller`] dispatches the action to an
//!   [`Actuator`]. The [`LocalHarness`] actuator executes synchronously
//!   through the sans-io reconfiguration drivers
//!   (`marlin_core::drivers::reconfig`); the simulator's actuator (in
//!   `marlin-cluster`) schedules the equivalent virtual-time migration
//!   plans. Policies cannot tell the two apart — the same policy instance
//!   is unit-tested against synthetic observations, end-to-end-tested
//!   against [`LocalCluster`], and benchmarked inside the discrete-event
//!   simulation.
//!
//! ## Why both runners matter
//!
//! The synchronous runtime proves *safety*: every action lands as real
//! reconfiguration transactions whose effects are checked against the
//! paper's I0–I4 invariants after each control step. The simulator proves
//! *performance*: the same decisions play out against queueing, cold
//! caches, and migration contention, producing the throughput/cost traces
//! the benches report.
//!
//! [`LocalCluster`]: marlin_core::runtime::LocalCluster
//! [`Observation`]: observe::Observation
//! [`ScaleAction`]: policy::ScaleAction
//! [`ScalingPolicy`]: policy::ScalingPolicy
//! [`Actuator`]: controller::Actuator
//! [`Controller`]: controller::Controller
//! [`ReactivePolicy`]: policy::ReactivePolicy
//! [`TargetUtilizationPolicy`]: policy::TargetUtilizationPolicy
//! [`CostBoundedPolicy`]: policy::CostBoundedPolicy
//! [`RegionalPolicy`]: regional::RegionalPolicy
//! [`PredictivePolicy`]: forecast::PredictivePolicy
//! [`RebalancePlanner`]: rebalance::RebalancePlanner
//! [`LocalHarness`]: local::LocalHarness

// Every public item in the control loop is API surface for scenario
// authors; CI escalates this to an error via RUSTDOCFLAGS=-D warnings.
#![warn(missing_docs)]

pub mod controller;
pub mod forecast;
pub mod invariant;
pub mod local;
pub mod observe;
pub mod policy;
pub mod rebalance;
pub mod regional;

pub use controller::{Actuator, Controller};
pub use forecast::{
    backtest, relative_error, BacktestConfig, BacktestReport, ErrorTracker, ForecastSample,
    Forecaster, HoltWintersForecaster, LinearTrendForecaster, NaiveForecaster, PredictiveConfig,
    PredictivePolicy, MAPE_FLOOR,
};
pub use invariant::{InvariantId, InvariantViolation};
pub use local::LocalHarness;
pub use observe::{GranuleLoad, NodeLoad, Observation, RegionLoad};
pub use policy::{
    CostBoundedPolicy, HoldPolicy, ReactiveConfig, ReactivePolicy, ScaleAction, ScalingPolicy,
    SizeBounds, TargetUtilizationConfig, TargetUtilizationPolicy,
};
pub use rebalance::{validate_moves, GranuleMove, RebalanceConfig, RebalancePlanner};
pub use regional::RegionalPolicy;
