//! The *observe* leg of the control loop: a point-in-time snapshot of
//! cluster health that policies decide on.
//!
//! Observations are deliberately runner-agnostic: the discrete-event
//! simulator fills them from its CPU queueing models and windowed latency
//! instruments, while the synchronous [`LocalCluster`] harness synthesizes
//! them from granule placement plus an exogenous load signal. Policies
//! never see which runner produced the snapshot — that is what lets the
//! same policy code be unit-tested synchronously and benchmarked in
//! virtual time.
//!
//! [`LocalCluster`]: marlin_core::runtime::LocalCluster

use marlin_common::{GranuleId, NodeId};
use marlin_sim::Nanos;

/// One node's load at observation time.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeLoad {
    /// The node observed.
    pub node: NodeId,
    /// Whether the node is a live member.
    pub alive: bool,
    /// CPU utilization (offered work over capacity). Unlike the
    /// observation-level mean this is *raw*: values above 1 expose how far
    /// past saturation the node is being driven.
    pub utilization: f64,
    /// Granules the node currently owns.
    pub owned_granules: u64,
}

/// One granule's observed heat (for the rebalance planner).
#[derive(Clone, Debug, PartialEq)]
pub struct GranuleLoad {
    /// The granule observed.
    pub granule: GranuleId,
    /// Its authoritative owner at observation time.
    pub owner: NodeId,
    /// Access heat in arbitrary but mutually comparable units
    /// (e.g. transactions touching the granule in the sampling window).
    pub load: f64,
}

/// A snapshot of cluster health fed to [`ScalingPolicy::decide`].
///
/// [`ScalingPolicy::decide`]: crate::policy::ScalingPolicy::decide
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Virtual (or logical) observation time.
    pub at: Nanos,
    /// Number of live member nodes.
    pub live_nodes: u32,
    /// Committed user transactions per second over the sampling window.
    pub throughput_tps: f64,
    /// p99 latency of committed transactions over the sampling window.
    pub p99_latency: Nanos,
    /// Mean CPU utilization across live nodes, `[0, 1]`.
    pub mean_utilization: f64,
    /// Mean offered work *beyond* capacity across live nodes (0 when the
    /// cluster is keeping up; grows as queues build).
    pub queue_depth: f64,
    /// Current spend rate (compute + coordination service), $/hour.
    pub dollars_per_hour: f64,
    /// Per-node loads (live and provisioned-but-dead nodes).
    pub node_loads: Vec<NodeLoad>,
    /// Sampled granule heats (typically the hottest K, not the universe).
    pub granule_loads: Vec<GranuleLoad>,
}

impl Default for NodeLoad {
    fn default() -> Self {
        NodeLoad {
            node: NodeId(0),
            alive: true,
            utilization: 0.0,
            owned_granules: 0,
        }
    }
}

impl Observation {
    /// Live nodes ordered coolest-first — the preferred scale-in victims.
    #[must_use]
    pub fn coolest_live_nodes(&self) -> Vec<NodeId> {
        let mut live: Vec<&NodeLoad> = self.node_loads.iter().filter(|n| n.alive).collect();
        live.sort_by(|a, b| {
            a.utilization
                .total_cmp(&b.utilization)
                .then_with(|| a.owned_granules.cmp(&b.owned_granules))
                .then_with(|| b.node.cmp(&a.node))
        });
        live.iter().map(|n| n.node).collect()
    }

    /// Convenience constructor for policy unit tests: `live` nodes at a
    /// uniform utilization.
    #[must_use]
    pub fn uniform(at: Nanos, live: u32, utilization: f64) -> Self {
        Observation {
            at,
            live_nodes: live,
            mean_utilization: utilization,
            node_loads: (0..live)
                .map(|i| NodeLoad {
                    node: NodeId(i),
                    alive: true,
                    utilization,
                    owned_granules: 1,
                })
                .collect(),
            ..Observation::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coolest_live_nodes_sorts_by_utilization_then_granules() {
        let mut obs = Observation::uniform(0, 3, 0.5);
        obs.node_loads[0].utilization = 0.9;
        obs.node_loads[2].utilization = 0.1;
        obs.node_loads.push(NodeLoad {
            node: NodeId(9),
            alive: false,
            utilization: 0.0,
            owned_granules: 0,
        });
        let order = obs.coolest_live_nodes();
        assert_eq!(order, vec![NodeId(2), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn ties_prefer_higher_node_ids_as_victims() {
        // Later-added nodes (higher ids) are released first on a tie, which
        // keeps scale-in symmetric with scale-out.
        let obs = Observation::uniform(0, 3, 0.5);
        assert_eq!(obs.coolest_live_nodes()[0], NodeId(2));
    }
}
