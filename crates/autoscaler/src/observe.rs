//! The *observe* leg of the control loop: a point-in-time snapshot of
//! cluster health that policies decide on.
//!
//! Observations are deliberately runner-agnostic: the discrete-event
//! simulator fills them from its CPU queueing models and windowed latency
//! instruments, while the synchronous [`LocalCluster`] harness synthesizes
//! them from granule placement plus an exogenous load signal. Policies
//! never see which runner produced the snapshot — that is what lets the
//! same policy code be unit-tested synchronously and benchmarked in
//! virtual time.
//!
//! Placement is part of the snapshot: every [`NodeLoad`] carries the
//! region the runner placed the node in, and [`Observation::region_loads`]
//! groups the per-node loads into per-region digests so region-aware
//! policies (see [`RegionalPolicy`]) can size each placement domain
//! independently.
//!
//! [`LocalCluster`]: marlin_core::runtime::LocalCluster
//! [`RegionalPolicy`]: crate::regional::RegionalPolicy

use marlin_common::{GranuleId, NodeId, RegionId};
use marlin_sim::Nanos;

/// One node's load at observation time.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeLoad {
    /// The node observed.
    pub node: NodeId,
    /// The region the runner placed the node in (`RegionId(0)` for
    /// single-region deployments).
    pub region: RegionId,
    /// Whether the node is a live member.
    pub alive: bool,
    /// Whether the node is *ordered but not yet live*: an `AddNodes`
    /// actuation reserved this slot and the provisioning lead time is
    /// still running. Policies must count pending capacity when sizing
    /// (see [`Observation::pending_nodes`]) or they re-order the same
    /// nodes every tick of the lead. Always `false` when provisioning is
    /// instant (the default), so lead-free decision logs are unchanged.
    pub pending: bool,
    /// CPU utilization (offered work over capacity). Unlike the
    /// observation-level mean this is *raw*: values above 1 expose how far
    /// past saturation the node is being driven.
    ///
    /// The number is offered load per worker-capacity in every runner;
    /// what differs is provenance. The simulator's analytic mode reports
    /// an EMA *estimate* of it; its per-request mode *measures* it
    /// exactly over the observation window (service demand arrived ÷
    /// capacity held); the synchronous runtime synthesizes it from the
    /// client trace. In every case >1 means demand outran capacity.
    pub utilization: f64,
    /// Granules the node currently owns.
    pub owned_granules: u64,
}

/// One granule's observed heat (for the rebalance planner).
#[derive(Clone, Debug, PartialEq)]
pub struct GranuleLoad {
    /// The granule observed.
    pub granule: GranuleId,
    /// Its authoritative owner at observation time.
    pub owner: NodeId,
    /// Access heat in arbitrary but mutually comparable units
    /// (e.g. transactions touching the granule in the sampling window).
    ///
    /// When the runner tracks heat with the count-min sketch (the cohort
    /// scale engine's default), this is an *estimate* that never
    /// undercounts the true heat but may overcount within the sketch's
    /// error envelope. Planners must treat loads as ranking signals, not
    /// exact tallies — the rebalance planner's threshold-and-spread
    /// logic already does.
    pub load: f64,
}

/// One region's load digest: the [`Observation`]-level summary fields,
/// restricted to the nodes placed in that region.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionLoad {
    /// The region summarized.
    pub region: RegionId,
    /// Live member nodes placed in the region.
    pub live_nodes: u32,
    /// Mean CPU utilization across the region's live nodes, clamped to
    /// `[0, 1]` (the excess shows up in `queue_depth`).
    pub mean_utilization: f64,
    /// Mean per-node overload across the region's live nodes.
    /// [`Observation::derive_region_loads`] fills it with the modeled
    /// utilization excess above 1; runners that measure real queues
    /// (the simulator in per-request mode) overwrite it with the mean
    /// measured queue length per worker over the region's stations —
    /// see [`Observation::queue_depth`] for the two semantics.
    pub queue_depth: f64,
    /// p99 commit latency of the region's clients over the sampling
    /// window. Runners that attribute commits exactly (the simulator)
    /// fill the true per-region value; [`Observation::derive_region_loads`]
    /// falls back to the global p99.
    pub p99_latency: Nanos,
    /// Committed transactions per second attributed to the region's
    /// clients over the sampling window (0 where the runner cannot
    /// attribute commits).
    pub throughput_tps: f64,
    /// Current spend rate attributed to the region, $/hour.
    pub dollars_per_hour: f64,
}

/// A snapshot of cluster health fed to [`ScalingPolicy::decide`].
///
/// [`ScalingPolicy::decide`]: crate::policy::ScalingPolicy::decide
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Virtual (or logical) observation time.
    pub at: Nanos,
    /// Number of live member nodes.
    pub live_nodes: u32,
    /// Committed user transactions per second over the sampling window.
    pub throughput_tps: f64,
    /// p99 latency of committed transactions over the sampling window.
    pub p99_latency: Nanos,
    /// Mean CPU utilization across live nodes, `[0, 1]`.
    pub mean_utilization: f64,
    /// Mean per-node overload across live nodes: the part of each node's
    /// raw utilization above 1, averaged (0 when the cluster is keeping
    /// up; grows as queues build).
    ///
    /// Its meaning sharpens with the runner's CPU model:
    ///
    /// - analytic EMA (`CpuModel::Analytic`, the simulator's default) —
    ///   *modeled* offered work beyond capacity, an estimate smoothed by
    ///   the EMA time constant (the mean of each node's utilization
    ///   excess above 1);
    /// - per-request queueing (`CpuModel::PerRequest`) — the *real*
    ///   queue length per worker, measured from the stations'
    ///   waiting-time integrals and time-averaged over the observation
    ///   window (not derived from a utilization excess).
    pub queue_depth: f64,
    /// Current spend rate (compute + coordination service), $/hour.
    pub dollars_per_hour: f64,
    /// Per-node loads (live and provisioned-but-dead nodes).
    pub node_loads: Vec<NodeLoad>,
    /// Per-region digests grouped from `node_loads` by the placement the
    /// runner reports (empty only when a runner predates regions; use
    /// [`Observation::derive_region_loads`] to fill it from `node_loads`).
    pub region_loads: Vec<RegionLoad>,
    /// Sampled granule heats (typically the hottest K, not the universe).
    pub granule_loads: Vec<GranuleLoad>,
}

impl Default for NodeLoad {
    fn default() -> Self {
        NodeLoad {
            node: NodeId(0),
            region: RegionId(0),
            alive: true,
            pending: false,
            utilization: 0.0,
            owned_granules: 0,
        }
    }
}

impl Observation {
    /// Offered load in node-capacity units — the demand signal sizing
    /// policies (and forecasters) read: the sum of the raw per-node
    /// utilizations, plus whatever backlog `queue_depth` reports
    /// *beyond* what those utilizations already explain.
    ///
    /// The correction term is what keeps both observation dialects
    /// honest without double counting. Under the analytic CPU model
    /// utilizations exceed 1 under overload and `queue_depth` is
    /// exactly their mean excess — the subtraction cancels it to
    /// zero and the sum alone is the demand signal (adding
    /// `queue_depth` on top would count every unit of backlog twice
    /// and overshoot). Under the per-request model completions gate
    /// arrivals, so measured utilizations self-limit near 1 while
    /// the real backlog rides only in `queue_depth` — there the
    /// excess is ~0 and the correction injects the full queue, so a
    /// deep backlog still reads as demand instead of being invisible
    /// to the sum.
    ///
    /// The summary-field fallback (no per-node loads) clamps the
    /// mean before adding `queue_depth * live` for the same reason.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        if self.node_loads.iter().any(|n| n.alive) {
            let alive: Vec<f64> = self
                .node_loads
                .iter()
                .filter(|n| n.alive)
                .map(|n| n.utilization.max(0.0))
                .collect();
            let explained_excess =
                alive.iter().map(|u| (u - 1.0).max(0.0)).sum::<f64>() / alive.len() as f64;
            let unexplained_queue = (self.queue_depth - explained_excess).max(0.0);
            alive.iter().sum::<f64>() + unexplained_queue * alive.len() as f64
        } else {
            let live = f64::from(self.live_nodes);
            self.mean_utilization.min(1.0) * live + self.queue_depth * live
        }
    }

    /// The *forecasting* demand signal, in node-capacity units: the sum
    /// of the raw per-node utilizations of the live members, with no
    /// backlog correction.
    ///
    /// This deliberately differs from [`Observation::offered_load`] —
    /// the sizing plant model — by excluding the unexplained-queue term.
    /// Backlog is demand that *already arrived* and is waiting; adding
    /// it back (times the node count) makes the series spike 5–10× the
    /// moment a queue forms, which poisons any trend or seasonal fit and
    /// trips the predictive policy's error guard exactly when prediction
    /// matters most. The utilization sum tracks the exogenous demand
    /// curve smoothly in both CPU-model dialects (the analytic EMA
    /// reports overload as utilization above 1; the per-request station
    /// measures offered work directly), which is what makes it
    /// forecastable.
    #[must_use]
    pub fn demand_signal(&self) -> f64 {
        self.node_loads
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.utilization.max(0.0))
            .sum()
    }

    /// Nodes ordered but not yet live — `AddNodes` actuations whose
    /// provisioning lead time is still running. Sizing policies count
    /// these as capacity already bought: the effective provisioned size
    /// is `live_nodes + pending_nodes()`. Always 0 when provisioning is
    /// instant.
    #[must_use]
    pub fn pending_nodes(&self) -> u32 {
        self.node_loads.iter().filter(|n| n.pending).count() as u32
    }

    /// Live nodes ordered coolest-first — the preferred scale-in victims.
    #[must_use]
    pub fn coolest_live_nodes(&self) -> Vec<NodeId> {
        self.coolest_live_nodes_where(|_| true)
    }

    /// Live nodes *in one region* ordered coolest-first — the preferred
    /// victims for a region-local drain.
    #[must_use]
    pub fn coolest_live_nodes_in(&self, region: RegionId) -> Vec<NodeId> {
        self.coolest_live_nodes_where(|n| n.region == region)
    }

    fn coolest_live_nodes_where(&self, keep: impl Fn(&NodeLoad) -> bool) -> Vec<NodeId> {
        let mut live: Vec<&NodeLoad> = self
            .node_loads
            .iter()
            .filter(|n| n.alive && keep(n))
            .collect();
        live.sort_by(|a, b| {
            a.utilization
                .total_cmp(&b.utilization)
                .then_with(|| a.owned_granules.cmp(&b.owned_granules))
                .then_with(|| b.node.cmp(&a.node))
        });
        live.iter().map(|n| n.node).collect()
    }

    /// The distinct regions present in `node_loads`, ascending.
    #[must_use]
    pub fn regions(&self) -> Vec<RegionId> {
        let mut regions: Vec<RegionId> = self.node_loads.iter().map(|n| n.region).collect();
        regions.sort_unstable_by_key(|r| r.0);
        regions.dedup();
        regions
    }

    /// Fill `region_loads` by grouping `node_loads` on the placement the
    /// runner reported. Throughput and spend are split proportionally to
    /// each region's live-node share; runners that can attribute them
    /// exactly (the simulator tags commits with the client's region)
    /// overwrite those two fields afterwards.
    pub fn derive_region_loads(&mut self) {
        let regions = self.regions();
        let total_live = self.node_loads.iter().filter(|n| n.alive).count() as f64;
        self.region_loads = regions
            .into_iter()
            .map(|region| {
                let nodes: Vec<&NodeLoad> = self
                    .node_loads
                    .iter()
                    .filter(|n| n.alive && n.region == region)
                    .collect();
                let n = nodes.len() as f64;
                let (mean, queue) = if nodes.is_empty() {
                    (0.0, 0.0)
                } else {
                    (
                        nodes.iter().map(|l| l.utilization.min(1.0)).sum::<f64>() / n,
                        nodes
                            .iter()
                            .map(|l| (l.utilization - 1.0).max(0.0))
                            .sum::<f64>()
                            / n,
                    )
                };
                let share = if total_live > 0.0 {
                    n / total_live
                } else {
                    0.0
                };
                RegionLoad {
                    region,
                    live_nodes: nodes.len() as u32,
                    mean_utilization: mean,
                    queue_depth: queue,
                    p99_latency: self.p99_latency,
                    throughput_tps: self.throughput_tps * share,
                    dollars_per_hour: self.dollars_per_hour * share,
                }
            })
            .collect();
    }

    /// The region digest for `region`, if the observation carries one.
    #[must_use]
    pub fn region_load(&self, region: RegionId) -> Option<&RegionLoad> {
        self.region_loads.iter().find(|r| r.region == region)
    }

    /// An [`Observation`] restricted to one region: the summary fields a
    /// region-blind sizing policy reads (`live_nodes`, utilization, queue
    /// depth, p99, throughput, spend) describe only that region, and
    /// `node_loads`/`granule_loads` are filtered to nodes placed there —
    /// so victim selection through [`Observation::coolest_live_nodes`]
    /// is automatically region-local.
    ///
    /// The summary fields come from the region's [`RegionLoad`] digest
    /// when the observation carries one (the runner's exact attribution,
    /// including the per-region p99 a latency-triggered policy reads);
    /// they are recomputed from `node_loads` only as a fallback. A global
    /// p99 deliberately never leaks into a view that has a digest — it
    /// would make one region's latency breach scale out every region.
    #[must_use]
    pub fn region_view(&self, region: RegionId) -> Observation {
        let node_loads: Vec<NodeLoad> = self
            .node_loads
            .iter()
            .filter(|n| n.region == region)
            .cloned()
            .collect();
        // Set lookup: the scale engine's observations carry hottest-K
        // granule samples across hundreds of nodes, and a linear
        // `contains` per granule makes the filter O(G×N).
        let region_nodes: std::collections::BTreeSet<NodeId> =
            node_loads.iter().map(|n| n.node).collect();
        let live: Vec<&NodeLoad> = node_loads.iter().filter(|n| n.alive).collect();
        let digest = self.region_load(region);
        let (mean_utilization, queue_depth) = match digest {
            Some(d) => (d.mean_utilization, d.queue_depth),
            None => {
                let n = live.len() as f64;
                if live.is_empty() {
                    (0.0, 0.0)
                } else {
                    (
                        live.iter().map(|l| l.utilization.min(1.0)).sum::<f64>() / n,
                        live.iter()
                            .map(|l| (l.utilization - 1.0).max(0.0))
                            .sum::<f64>()
                            / n,
                    )
                }
            }
        };
        let granule_loads: Vec<GranuleLoad> = self
            .granule_loads
            .iter()
            .filter(|g| region_nodes.contains(&g.owner))
            .cloned()
            .collect();
        Observation {
            at: self.at,
            live_nodes: live.len() as u32,
            throughput_tps: digest.map_or(0.0, |d| d.throughput_tps),
            p99_latency: digest.map_or(self.p99_latency, |d| d.p99_latency),
            mean_utilization,
            queue_depth,
            dollars_per_hour: digest.map_or(0.0, |d| d.dollars_per_hour),
            node_loads,
            region_loads: digest.map(|d| vec![d.clone()]).unwrap_or_default(),
            granule_loads,
        }
    }

    /// Convenience constructor for policy unit tests: `live` nodes at a
    /// uniform utilization.
    #[must_use]
    pub fn uniform(at: Nanos, live: u32, utilization: f64) -> Self {
        let mut obs = Observation {
            at,
            live_nodes: live,
            mean_utilization: utilization,
            node_loads: (0..live)
                .map(|i| NodeLoad {
                    node: NodeId(i),
                    region: RegionId(0),
                    alive: true,
                    pending: false,
                    utilization,
                    owned_granules: 1,
                })
                .collect(),
            ..Observation::default()
        };
        obs.derive_region_loads();
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coolest_live_nodes_sorts_by_utilization_then_granules() {
        let mut obs = Observation::uniform(0, 3, 0.5);
        obs.node_loads[0].utilization = 0.9;
        obs.node_loads[2].utilization = 0.1;
        obs.node_loads.push(NodeLoad {
            node: NodeId(9),
            alive: false,
            ..NodeLoad::default()
        });
        let order = obs.coolest_live_nodes();
        assert_eq!(order, vec![NodeId(2), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn ties_prefer_higher_node_ids_as_victims() {
        // Later-added nodes (higher ids) are released first on a tie, which
        // keeps scale-in symmetric with scale-out.
        let obs = Observation::uniform(0, 3, 0.5);
        assert_eq!(obs.coolest_live_nodes()[0], NodeId(2));
    }

    fn two_region_obs() -> Observation {
        let mut obs = Observation::uniform(0, 4, 0.5);
        for (i, n) in obs.node_loads.iter_mut().enumerate() {
            n.region = RegionId((i % 2) as u16);
        }
        // Region 0 is hot (nodes 0, 2), region 1 cool (nodes 1, 3).
        obs.node_loads[0].utilization = 1.2;
        obs.node_loads[2].utilization = 0.8;
        obs.node_loads[1].utilization = 0.2;
        obs.node_loads[3].utilization = 0.1;
        obs.throughput_tps = 100.0;
        obs.dollars_per_hour = 4.0;
        // One sampled hot granule per node, so views can prove their
        // granule filter follows the owner's placement.
        obs.granule_loads = (0..4)
            .map(|i| GranuleLoad {
                granule: GranuleId(i),
                owner: NodeId(i as u32),
                load: 10.0 + i as f64,
            })
            .collect();
        obs.derive_region_loads();
        obs
    }

    #[test]
    fn region_loads_group_nodes_by_placement() {
        let obs = two_region_obs();
        assert_eq!(obs.regions(), vec![RegionId(0), RegionId(1)]);
        let r0 = obs.region_load(RegionId(0)).expect("region 0 digest");
        let r1 = obs.region_load(RegionId(1)).expect("region 1 digest");
        assert_eq!(r0.live_nodes, 2);
        assert_eq!(r1.live_nodes, 2);
        // Region 0: min(1.2,1)=1.0 and 0.8 → mean 0.9, excess 0.2/2=0.1.
        assert!((r0.mean_utilization - 0.9).abs() < 1e-12);
        assert!((r0.queue_depth - 0.1).abs() < 1e-12);
        assert!((r1.mean_utilization - 0.15).abs() < 1e-12);
        assert_eq!(r1.queue_depth, 0.0);
        // Proportional split of throughput and spend (2 of 4 live nodes).
        assert!((r0.throughput_tps - 50.0).abs() < 1e-12);
        assert!((r1.dollars_per_hour - 2.0).abs() < 1e-12);
    }

    #[test]
    fn region_view_restricts_nodes_and_victims() {
        let obs = two_region_obs();
        let v = obs.region_view(RegionId(1));
        assert_eq!(v.live_nodes, 2);
        assert!(v.node_loads.iter().all(|n| n.region == RegionId(1)));
        assert!((v.mean_utilization - 0.15).abs() < 1e-12);
        // Victim ordering inside the view is region-local.
        assert_eq!(v.coolest_live_nodes(), vec![NodeId(3), NodeId(1)]);
        assert_eq!(
            obs.coolest_live_nodes_in(RegionId(1)),
            vec![NodeId(3), NodeId(1)]
        );
        // Granule samples follow their owner's placement: only the
        // granules owned by region-1 nodes (odd ids) survive the view.
        assert_eq!(
            v.granule_loads
                .iter()
                .map(|g| g.granule)
                .collect::<Vec<_>>(),
            vec![GranuleId(1), GranuleId(3)]
        );
    }
}
