//! The granule rebalance planner: pick hot granules and propose
//! `MigrationTxn`s that flatten load skew without changing the member
//! count (the diagonal complement to scale-out/in — see *Diagonal
//! Scaling* in PAPERS.md).
//!
//! The planner is a pure function from an [`Observation`] to a list of
//! [`GranuleMove`]s with two hard guarantees the reconfiguration layer
//! depends on:
//!
//! 1. **Source correctness** — every move's `src` is the granule's owner
//!    in the observation, so the emitted `MigrationTxn` passes the
//!    data-effectiveness check instead of aborting.
//! 2. **Single assignment** — a granule appears in at most one move, so
//!    applying the plan in any order can never create dual ownership
//!    (invariant I3): each granule's chain of custody stays linear.

use crate::observe::Observation;
use marlin_common::{GranuleId, NodeId};
use std::collections::BTreeMap;

/// One planned migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GranuleMove {
    /// The granule to migrate.
    pub granule: GranuleId,
    /// Its current owner (must match the observation).
    pub src: NodeId,
    /// The destination member.
    pub dst: NodeId,
}

/// Configuration of [`RebalancePlanner`].
#[derive(Clone, Debug)]
pub struct RebalanceConfig {
    /// Only plan when the hottest node's load exceeds the mean by this
    /// fraction (0.25 = 25% above the mean).
    pub imbalance_threshold: f64,
    /// Cap on moves per plan (each move is a `MigrationTxn`; plans should
    /// stay small enough to finish within one control interval).
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            imbalance_threshold: 0.25,
            max_moves: 32,
        }
    }
}

/// Plans hot-granule migrations between live members.
#[derive(Clone, Debug, Default)]
pub struct RebalancePlanner {
    cfg: RebalanceConfig,
}

impl RebalancePlanner {
    /// A planner with the given configuration.
    #[must_use]
    pub fn new(cfg: RebalanceConfig) -> Self {
        RebalancePlanner { cfg }
    }

    /// Propose moves that flatten the observed granule heat.
    ///
    /// Greedy: repeatedly take the hottest unmoved granule on the most
    /// loaded node and send it to the least loaded node, as long as the
    /// transfer strictly reduces the spread and the imbalance threshold is
    /// still exceeded.
    ///
    /// Destinations are region-local where possible: the coolest node in
    /// the *hot node's own region* is preferred, falling back to the
    /// globally coolest only when the hot node is alone in its region. A
    /// granule's demand comes from its home region's clients (§6.5), so
    /// a cross-region move would trade CPU balance for WAN round trips on
    /// every access — the same locality discipline scale-outs and drains
    /// follow.
    #[must_use]
    pub fn plan(&self, obs: &Observation) -> Vec<GranuleMove> {
        let live: Vec<NodeId> = obs
            .node_loads
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.node)
            .collect();
        if live.len() < 2 || obs.granule_loads.is_empty() {
            return Vec::new();
        }
        let region_of: BTreeMap<NodeId, marlin_common::RegionId> = obs
            .node_loads
            .iter()
            .filter(|n| n.alive)
            .map(|n| (n.node, n.region))
            .collect();

        // Per-node heat from the sampled granules; every live node starts
        // at zero so cold nodes are visible as destinations.
        let mut node_heat: BTreeMap<NodeId, f64> = live.iter().map(|&n| (n, 0.0)).collect();
        // Hottest-first queue of candidate granules per node.
        let mut candidates: BTreeMap<NodeId, Vec<(f64, GranuleId)>> = BTreeMap::new();
        for g in &obs.granule_loads {
            // Granules owned by dead/unknown nodes are recovery's problem,
            // not the rebalancer's.
            let Some(heat) = node_heat.get_mut(&g.owner) else {
                continue;
            };
            *heat += g.load;
            candidates
                .entry(g.owner)
                .or_default()
                .push((g.load, g.granule));
        }
        for list in candidates.values_mut() {
            list.sort_by(|a, b| b.0.total_cmp(&a.0));
        }

        let mean: f64 = node_heat.values().sum::<f64>() / node_heat.len() as f64;
        if mean <= 0.0 {
            return Vec::new();
        }
        let trigger = mean * (1.0 + self.cfg.imbalance_threshold);

        let mut moves: Vec<GranuleMove> = Vec::new();
        while moves.len() < self.cfg.max_moves {
            let (&hot, &hot_heat) = node_heat
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty");
            if hot_heat <= trigger {
                break;
            }
            // Coolest destination in the hot node's region, else the
            // globally coolest other node.
            let hot_region = region_of.get(&hot);
            let cool_pick = node_heat
                .iter()
                .filter(|&(&n, _)| n != hot && region_of.get(&n) == hot_region)
                .min_by(|a, b| a.1.total_cmp(b.1))
                .or_else(|| {
                    node_heat
                        .iter()
                        .filter(|&(&n, _)| n != hot)
                        .min_by(|a, b| a.1.total_cmp(b.1))
                });
            let Some((&cool, &cool_heat)) = cool_pick else {
                break;
            };
            // Hottest granule on the hot node that still helps: moving it
            // must not push the destination past the source.
            let Some(list) = candidates.get_mut(&hot) else {
                break;
            };
            let Some(pos) = list
                .iter()
                .position(|(load, _)| cool_heat + load < hot_heat - load)
            else {
                break;
            };
            let (load, granule) = list.remove(pos);
            *node_heat.get_mut(&hot).expect("hot exists") -= load;
            *node_heat.get_mut(&cool).expect("cool exists") += load;
            moves.push(GranuleMove {
                granule,
                src: hot,
                dst: cool,
            });
        }
        moves
    }
}

/// Check the planner's structural guarantees on a batch of moves.
///
/// Returns an error naming the first violation: a granule assigned twice
/// (would race to dual ownership), a self-move, or a move whose source
/// disagrees with the observation's ownership.
pub fn validate_moves(moves: &[GranuleMove], obs: &Observation) -> Result<(), String> {
    let owners: BTreeMap<GranuleId, NodeId> = obs
        .granule_loads
        .iter()
        .map(|g| (g.granule, g.owner))
        .collect();
    let mut seen: BTreeMap<GranuleId, ()> = BTreeMap::new();
    for m in moves {
        if m.src == m.dst {
            return Err(format!("self-move of {:?}", m.granule));
        }
        if seen.insert(m.granule, ()).is_some() {
            return Err(format!("{:?} assigned twice in one plan", m.granule));
        }
        match owners.get(&m.granule) {
            Some(&owner) if owner == m.src => {}
            Some(&owner) => {
                return Err(format!(
                    "{:?} moved from {:?} but owned by {owner:?}",
                    m.granule, m.src
                ));
            }
            None => return Err(format!("{:?} not present in the observation", m.granule)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{GranuleLoad, NodeLoad};

    fn skewed_observation() -> Observation {
        // Node 0 holds four hot granules; nodes 1 and 2 are cold.
        let mut obs = Observation::uniform(0, 3, 0.5);
        obs.node_loads = (0..3)
            .map(|i| NodeLoad {
                node: NodeId(i),
                alive: true,
                utilization: if i == 0 { 0.95 } else { 0.2 },
                owned_granules: if i == 0 { 4 } else { 1 },
                ..NodeLoad::default()
            })
            .collect();
        obs.granule_loads = vec![
            GranuleLoad {
                granule: GranuleId(0),
                owner: NodeId(0),
                load: 40.0,
            },
            GranuleLoad {
                granule: GranuleId(1),
                owner: NodeId(0),
                load: 30.0,
            },
            GranuleLoad {
                granule: GranuleId(2),
                owner: NodeId(0),
                load: 20.0,
            },
            GranuleLoad {
                granule: GranuleId(3),
                owner: NodeId(0),
                load: 10.0,
            },
            GranuleLoad {
                granule: GranuleId(4),
                owner: NodeId(1),
                load: 5.0,
            },
            GranuleLoad {
                granule: GranuleId(5),
                owner: NodeId(2),
                load: 5.0,
            },
        ];
        obs
    }

    #[test]
    fn plans_flatten_skew_and_validate() {
        let planner = RebalancePlanner::default();
        let obs = skewed_observation();
        let moves = planner.plan(&obs);
        assert!(!moves.is_empty(), "skew above threshold must produce moves");
        validate_moves(&moves, &obs).expect("planner guarantees hold");
        assert!(
            moves.iter().all(|m| m.src == NodeId(0)),
            "only the hot node sheds"
        );
    }

    #[test]
    fn never_assigns_a_granule_twice() {
        let planner = RebalancePlanner::new(RebalanceConfig {
            imbalance_threshold: 0.0,
            max_moves: 100,
        });
        let obs = skewed_observation();
        let moves = planner.plan(&obs);
        let mut granules: Vec<GranuleId> = moves.iter().map(|m| m.granule).collect();
        granules.sort();
        granules.dedup();
        assert_eq!(
            granules.len(),
            moves.len(),
            "each granule moved at most once"
        );
    }

    #[test]
    fn balanced_load_produces_no_moves() {
        let planner = RebalancePlanner::default();
        let mut obs = Observation::uniform(0, 3, 0.5);
        obs.granule_loads = (0..6)
            .map(|g| GranuleLoad {
                granule: GranuleId(g),
                owner: NodeId((g % 3) as u32),
                load: 10.0,
            })
            .collect();
        assert!(planner.plan(&obs).is_empty());
    }

    #[test]
    fn dead_nodes_are_neither_sources_nor_destinations() {
        let planner = RebalancePlanner::new(RebalanceConfig {
            imbalance_threshold: 0.0,
            max_moves: 100,
        });
        let mut obs = skewed_observation();
        obs.node_loads[2].alive = false;
        let moves = planner.plan(&obs);
        assert!(moves
            .iter()
            .all(|m| m.dst != NodeId(2) && m.src != NodeId(2)));
    }

    #[test]
    fn validation_rejects_stale_sources_and_duplicates() {
        let obs = skewed_observation();
        let stale = vec![GranuleMove {
            granule: GranuleId(0),
            src: NodeId(1),
            dst: NodeId(2),
        }];
        assert!(validate_moves(&stale, &obs).is_err());
        let dup = vec![
            GranuleMove {
                granule: GranuleId(0),
                src: NodeId(0),
                dst: NodeId(1),
            },
            GranuleMove {
                granule: GranuleId(0),
                src: NodeId(0),
                dst: NodeId(2),
            },
        ];
        assert!(validate_moves(&dup, &obs).is_err());
    }

    #[test]
    fn destinations_prefer_the_hot_nodes_region() {
        use marlin_common::RegionId;
        // Node 0 (region 0) is hot; node 1 (region 0) is cool; node 2
        // (region 1) is even cooler globally. Moves must stay in region
        // 0 — a cross-region move would put the granule's home-region
        // demand behind WAN round trips.
        let planner = RebalancePlanner::new(RebalanceConfig {
            imbalance_threshold: 0.0,
            max_moves: 100,
        });
        let mut obs = skewed_observation();
        obs.node_loads[0].region = RegionId(0);
        obs.node_loads[1].region = RegionId(0);
        obs.node_loads[2].region = RegionId(1);
        // Make region 1's node the global minimum.
        obs.granule_loads.retain(|g| g.owner != NodeId(2));
        let moves = planner.plan(&obs);
        assert!(!moves.is_empty());
        assert!(
            moves.iter().all(|m| m.dst == NodeId(1)),
            "moves must land on the region-local cool node: {moves:?}"
        );
        // With no same-region alternative the planner falls back to the
        // global coolest instead of stalling.
        let mut obs = skewed_observation();
        obs.node_loads[0].region = RegionId(2);
        let moves = planner.plan(&obs);
        assert!(!moves.is_empty(), "lone-region hot node still sheds");
        assert!(moves.iter().all(|m| m.dst != NodeId(0)));
    }

    #[test]
    fn respects_the_move_cap() {
        let planner = RebalancePlanner::new(RebalanceConfig {
            imbalance_threshold: 0.0,
            max_moves: 2,
        });
        let moves = planner.plan(&skewed_observation());
        assert!(moves.len() <= 2);
    }
}
