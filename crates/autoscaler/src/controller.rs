//! The control loop: observe → decide → actuate.
//!
//! [`Controller`] owns a policy (and optionally a rebalance planner) and
//! turns observations into calls on an [`Actuator`] — the thin trait both
//! runners implement: the synchronous [`LocalCluster`] harness executes
//! actions immediately through the sans-io reconfiguration drivers, while
//! the discrete-event `ClusterSim` schedules the equivalent virtual-time
//! events. The controller itself has no idea which world it is driving;
//! that symmetry is what makes the policy layer unit-testable and the
//! closed-loop benchmarks trustworthy.
//!
//! [`LocalCluster`]: marlin_core::runtime::LocalCluster

use crate::observe::Observation;
use crate::policy::{ScaleAction, ScalingPolicy};
use crate::rebalance::{validate_moves, GranuleMove, RebalancePlanner};
use marlin_common::{NodeId, RegionId};
use marlin_sim::Nanos;

/// The actuation surface a runner exposes to the controller.
pub trait Actuator {
    /// Provision and join `count` fresh nodes, then rebalance onto them.
    /// `region` is the requested placement (`None` = runner's choice).
    fn add_nodes(&mut self, at: Nanos, count: u32, region: Option<RegionId>);

    /// Drain the victims onto the survivors and remove them from the
    /// membership once empty.
    fn remove_nodes(&mut self, at: Nanos, victims: &[NodeId]);

    /// Issue one `MigrationTxn` per move.
    fn rebalance(&mut self, at: Nanos, moves: &[GranuleMove]);
}

/// A closed-loop autoscaling controller.
pub struct Controller {
    policy: Box<dyn ScalingPolicy>,
    planner: Option<RebalancePlanner>,
    history: Vec<(Nanos, ScaleAction)>,
}

impl Controller {
    /// A controller around `policy`, without granule rebalancing.
    #[must_use]
    pub fn new(policy: Box<dyn ScalingPolicy>) -> Self {
        Controller {
            policy,
            planner: None,
            history: Vec::new(),
        }
    }

    /// Enable the granule rebalance planner for steady-state ticks.
    #[must_use]
    pub fn with_planner(mut self, planner: RebalancePlanner) -> Self {
        self.planner = Some(planner);
        self
    }

    /// The active policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The p99 ceiling the active policy is armed with, if any —
    /// delegated through decorators so the harness can derive SLO
    /// error-budget and burn-rate series for the metrics timeline.
    #[must_use]
    pub fn p99_ceiling(&self) -> Option<Nanos> {
        self.policy.p99_ceiling()
    }

    /// The policy's forecast snapshots behind the most recent tick
    /// (empty for non-forecasting policies). The harness driver copies
    /// them into each decision record.
    #[must_use]
    pub fn forecasts(&self) -> Vec<crate::forecast::ForecastSample> {
        self.policy.forecasts()
    }

    /// Every action taken so far, in order.
    #[must_use]
    pub fn history(&self) -> &[(Nanos, ScaleAction)] {
        &self.history
    }

    /// Scale actions (adds/removes only) taken so far.
    #[must_use]
    pub fn scale_action_count(&self) -> usize {
        self.history
            .iter()
            .filter(|(_, a)| !matches!(a, ScaleAction::Rebalance { .. }))
            .count()
    }

    /// Run one control tick: decide on `obs` and actuate the result.
    ///
    /// Member-count changes take priority; granule rebalancing only runs
    /// on ticks where the policy is satisfied with the cluster size (a
    /// migration storm during a scale event would fight the scale plan's
    /// own migrations for the same granule locks).
    pub fn tick(&mut self, obs: &Observation, actuator: &mut dyn Actuator) -> Option<ScaleAction> {
        if let Some(action) = self.policy.decide(obs) {
            self.dispatch(obs.at, &action, actuator);
            self.history.push((obs.at, action.clone()));
            return Some(action);
        }
        if let Some(planner) = &self.planner {
            let moves = planner.plan(obs);
            if !moves.is_empty() {
                debug_assert!(
                    validate_moves(&moves, obs).is_ok(),
                    "planner emitted an invalid plan"
                );
                let action = ScaleAction::Rebalance { moves };
                self.dispatch(obs.at, &action, actuator);
                self.history.push((obs.at, action.clone()));
                return Some(action);
            }
        }
        None
    }

    fn dispatch(&self, at: Nanos, action: &ScaleAction, actuator: &mut dyn Actuator) {
        match action {
            ScaleAction::AddNodes { count, region } => actuator.add_nodes(at, *count, *region),
            ScaleAction::RemoveNodes { victims } => actuator.remove_nodes(at, victims),
            ScaleAction::Rebalance { moves } => actuator.rebalance(at, moves),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::GranuleLoad;
    use crate::policy::{ReactiveConfig, ReactivePolicy};
    use crate::rebalance::RebalanceConfig;
    use marlin_common::GranuleId;

    /// Records calls instead of touching a cluster.
    #[derive(Default)]
    struct Recorder {
        adds: Vec<u32>,
        removes: Vec<Vec<NodeId>>,
        rebalances: Vec<Vec<GranuleMove>>,
    }

    impl Actuator for Recorder {
        fn add_nodes(&mut self, _at: Nanos, count: u32, _region: Option<RegionId>) {
            self.adds.push(count);
        }
        fn remove_nodes(&mut self, _at: Nanos, victims: &[NodeId]) {
            self.removes.push(victims.to_vec());
        }
        fn rebalance(&mut self, _at: Nanos, moves: &[GranuleMove]) {
            self.rebalances.push(moves.to_vec());
        }
    }

    fn controller(cooldown: Nanos) -> Controller {
        Controller::new(Box::new(ReactivePolicy::new(ReactiveConfig {
            cooldown,
            ..ReactiveConfig::paper_default(4, 16)
        })))
    }

    #[test]
    fn scale_actions_reach_the_actuator_and_history() {
        let mut c = controller(0);
        let mut rec = Recorder::default();
        c.tick(&Observation::uniform(0, 4, 0.9), &mut rec);
        c.tick(&Observation::uniform(marlin_sim::SECOND, 8, 0.1), &mut rec);
        assert_eq!(rec.adds, vec![4]);
        assert_eq!(rec.removes.len(), 1);
        assert_eq!(c.history().len(), 2);
        assert_eq!(c.scale_action_count(), 2);
    }

    #[test]
    fn rebalance_runs_only_in_steady_state() {
        let planner = RebalancePlanner::new(RebalanceConfig {
            imbalance_threshold: 0.0,
            max_moves: 8,
        });
        let mut c = controller(0).with_planner(planner);
        let mut rec = Recorder::default();
        // Saturated: the scale-out wins the tick, no rebalance.
        let mut hot = Observation::uniform(0, 4, 0.9);
        // Two hot granules on node 0: moving one genuinely flattens load
        // (the planner declines to relocate a *single* dominant hotspot).
        hot.granule_loads = vec![
            GranuleLoad {
                granule: GranuleId(0),
                owner: NodeId(0),
                load: 60.0,
            },
            GranuleLoad {
                granule: GranuleId(1),
                owner: NodeId(0),
                load: 40.0,
            },
            GranuleLoad {
                granule: GranuleId(2),
                owner: NodeId(1),
                load: 1.0,
            },
        ];
        c.tick(&hot, &mut rec);
        assert!(rec.rebalances.is_empty());
        // Steady state with skew: the planner acts.
        let mut steady = Observation::uniform(marlin_sim::SECOND, 8, 0.5);
        steady.granule_loads = hot.granule_loads.clone();
        c.tick(&steady, &mut rec);
        assert_eq!(rec.rebalances.len(), 1);
    }
}
