//! The shipped [`Forecaster`] models: naive, linear trend, Holt-Winters.
//!
//! All three are deterministic arithmetic over the sample stream. They
//! assume a roughly uniform sample cadence (the control interval in live
//! loops); where a model needs to convert a time horizon into a step
//! count it uses the spacing of the last two samples.

use crate::forecast::Forecaster;
use marlin_sim::Nanos;
use std::collections::VecDeque;

/// Convert a lead time into forecast steps given the observed sample
/// spacing (≥1 step; a lead shorter than one interval still predicts the
/// next sample).
fn steps_for(lead: Nanos, interval: Nanos) -> u64 {
    if interval == 0 {
        return 1;
    }
    lead.div_ceil(interval).max(1)
}

// ---------------------------------------------------------------------------
// Naive (last value)

/// The last-value baseline: tomorrow looks exactly like right now.
///
/// Every forecasting claim is measured against this model — a fancier
/// forecaster that cannot beat persistence on a workload adds risk
/// without adding information. Under a provisioning lead time the naive
/// model behaves like a reactive policy that acts one observation
/// earlier: no anticipation of ramps, but also no model error.
#[derive(Clone, Debug, Default)]
pub struct NaiveForecaster {
    last: Option<f64>,
}

impl NaiveForecaster {
    /// A cold naive model.
    #[must_use]
    pub fn new() -> Self {
        NaiveForecaster::default()
    }
}

impl Forecaster for NaiveForecaster {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn observe(&mut self, _at: Nanos, demand: f64) {
        self.last = Some(demand);
    }

    fn forecast(&self, _lead: Nanos) -> Option<f64> {
        self.last
    }
}

// ---------------------------------------------------------------------------
// Linear trend (rolling least squares)

/// Rolling least-squares trend extrapolation — the ramp anticipator.
///
/// Fits `demand = a + b·t` over the last `window` samples and evaluates
/// the fit `lead` past the newest one. On a monotone ramp (the rising
/// edge of a diurnal curve) the slope term is exactly the information a
/// reactive policy lacks: demand `lead` ahead is above demand now, so
/// capacity is ordered before the watermark breach. On flat demand the
/// slope fits to ~0 and the model degrades gracefully to the naive one.
#[derive(Clone, Debug)]
pub struct LinearTrendForecaster {
    /// `(t, demand)` samples, oldest first, bounded to `window`.
    samples: VecDeque<(Nanos, f64)>,
    window: usize,
}

impl LinearTrendForecaster {
    /// A trend model fitting over the last `window` samples (≥2).
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "a trend needs at least two samples");
        LinearTrendForecaster {
            samples: VecDeque::new(),
            window,
        }
    }
}

impl Forecaster for LinearTrendForecaster {
    fn name(&self) -> &'static str {
        "linear-trend"
    }

    fn observe(&mut self, at: Nanos, demand: f64) {
        self.samples.push_back((at, demand));
        while self.samples.len() > self.window {
            self.samples.pop_front();
        }
    }

    fn forecast(&self, lead: Nanos) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        // Ordinary least squares over the window, with time re-based to
        // the window start in seconds so the normal equations stay well
        // conditioned at nanosecond magnitudes.
        let t0 = self.samples.front().expect("non-empty").0;
        let n = self.samples.len() as f64;
        let (mut st, mut sd, mut stt, mut std_) = (0.0, 0.0, 0.0, 0.0);
        for &(at, d) in &self.samples {
            let t = (at - t0) as f64 / 1e9;
            st += t;
            sd += d;
            stt += t * t;
            std_ += t * d;
        }
        let denom = n * stt - st * st;
        let newest = self.samples.back().expect("non-empty");
        let horizon = (newest.0 - t0) as f64 / 1e9 + lead as f64 / 1e9;
        if denom.abs() < 1e-12 {
            // Degenerate (all samples at one instant): fall back to the
            // window mean.
            return Some(sd / n);
        }
        let slope = (n * std_ - st * sd) / denom;
        let intercept = (sd - slope * st) / n;
        // Floor the extrapolation at the window's lowest sample: demand
        // is never forecast below anything observed within the fit
        // window. An unfloored downward trend overshoots past the trough
        // of any bottoming-out curve, and those wild low forecasts poison
        // the rolling-error guard exactly when the policy needs to stay
        // trusted for the next ramp (capacity-wise the floor is the
        // conservative direction — release follows the actual curve).
        let floor = self
            .samples
            .iter()
            .map(|&(_, d)| d)
            .fold(f64::INFINITY, f64::min);
        Some((intercept + slope * horizon).max(floor).max(0.0))
    }
}

// ---------------------------------------------------------------------------
// Holt-Winters (additive seasonal)

/// Additive Holt-Winters triple exponential smoothing — the periodic
/// demand model (diurnal curves, §6 scenario shapes).
///
/// State: a level, a trend, and a ring of `season_len` additive seasonal
/// offsets (one per observation slot in the season). The first full
/// season seeds the state (level = season mean, seasonal = deviation
/// from it, trend = 0); forecasts exist only after seeding, so a cold
/// model reports `None` and the predictive policy stays reactive through
/// the first cycle. Entirely deterministic — no RNG, no wall clock —
/// which is what makes the proptest invariants (constant-trace
/// convergence, bitwise run-to-run reproducibility) pinnable.
#[derive(Clone, Debug)]
pub struct HoltWintersForecaster {
    alpha: f64,
    beta: f64,
    gamma: f64,
    season_len: usize,
    /// Seeding buffer (first season's samples), then unused.
    seed: Vec<f64>,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// Seasonal slot of the *next* sample.
    slot: usize,
    /// Spacing of the last two samples (steps-per-lead conversion).
    last_at: Option<Nanos>,
    interval: Nanos,
    warm: bool,
}

impl HoltWintersForecaster {
    /// An additive Holt-Winters model with `season_len` observation
    /// slots per season and smoothing factors `alpha` (level), `beta`
    /// (trend), `gamma` (seasonal), each in `(0, 1)`.
    #[must_use]
    pub fn new(season_len: usize, alpha: f64, beta: f64, gamma: f64) -> Self {
        assert!(season_len >= 2, "a season needs at least two slots");
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(
                (0.0..1.0).contains(&v) && v > 0.0,
                "{name} must be in (0,1)"
            );
        }
        HoltWintersForecaster {
            alpha,
            beta,
            gamma,
            season_len,
            seed: Vec::with_capacity(season_len),
            level: 0.0,
            trend: 0.0,
            seasonal: vec![0.0; season_len],
            slot: 0,
            last_at: None,
            interval: 0,
            warm: false,
        }
    }

    /// The paper-preset smoothing: responsive level (0.5), damped trend
    /// (0.1), slow seasonal adaptation (0.2).
    #[must_use]
    pub fn paper_default(season_len: usize) -> Self {
        HoltWintersForecaster::new(season_len, 0.5, 0.1, 0.2)
    }
}

impl Forecaster for HoltWintersForecaster {
    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn observe(&mut self, at: Nanos, demand: f64) {
        if let Some(last) = self.last_at {
            self.interval = at.saturating_sub(last).max(1);
        }
        self.last_at = Some(at);
        if !self.warm {
            self.seed.push(demand);
            if self.seed.len() == self.season_len {
                let mean = self.seed.iter().sum::<f64>() / self.season_len as f64;
                self.level = mean;
                self.trend = 0.0;
                for (i, &d) in self.seed.iter().enumerate() {
                    self.seasonal[i] = d - mean;
                }
                self.slot = 0; // the next sample is season slot 0 again
                self.warm = true;
            }
            return;
        }
        let s_prev = self.seasonal[self.slot];
        let level_prev = self.level;
        self.level =
            self.alpha * (demand - s_prev) + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - level_prev) + (1.0 - self.beta) * self.trend;
        self.seasonal[self.slot] = self.gamma * (demand - self.level) + (1.0 - self.gamma) * s_prev;
        self.slot = (self.slot + 1) % self.season_len;
    }

    fn forecast(&self, lead: Nanos) -> Option<f64> {
        if !self.warm {
            return None;
        }
        let k = steps_for(lead, self.interval);
        let seasonal = self.seasonal[(self.slot + (k - 1) as usize) % self.season_len];
        Some((self.level + k as f64 * self.trend + seasonal).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_sim::SECOND;

    #[test]
    fn naive_repeats_the_last_sample() {
        let mut f = NaiveForecaster::new();
        assert_eq!(f.forecast(SECOND), None, "cold model has no opinion");
        f.observe(0, 3.0);
        f.observe(SECOND, 5.0);
        assert_eq!(f.forecast(10 * SECOND), Some(5.0));
    }

    #[test]
    fn linear_trend_extrapolates_a_ramp() {
        let mut f = LinearTrendForecaster::new(4);
        assert_eq!(f.forecast(SECOND), None);
        // demand = 1.0 + 0.5/s.
        for i in 0..4u64 {
            f.observe(i * SECOND, 1.0 + 0.5 * i as f64);
        }
        let pred = f.forecast(4 * SECOND).expect("warm");
        // At t = 3s + 4s the line reads 1.0 + 0.5·7 = 4.5.
        assert!((pred - 4.5).abs() < 1e-9, "got {pred}");
    }

    #[test]
    fn linear_trend_never_forecasts_negative_demand() {
        let mut f = LinearTrendForecaster::new(3);
        for i in 0..3u64 {
            f.observe(i * SECOND, 2.0 - 1.0 * i as f64);
        }
        assert_eq!(f.forecast(60 * SECOND), Some(0.0));
    }

    #[test]
    fn holt_winters_is_cold_for_exactly_one_season() {
        let mut f = HoltWintersForecaster::paper_default(4);
        for i in 0..3u64 {
            f.observe(i * SECOND, 5.0);
            assert_eq!(f.forecast(SECOND), None, "sample {i} still seeding");
        }
        f.observe(3 * SECOND, 5.0);
        assert!(f.forecast(SECOND).is_some(), "one full season seeds it");
    }

    #[test]
    fn holt_winters_learns_a_periodic_shape() {
        // Period-4 sawtooth: 2, 4, 6, 4. After a few seasons the model's
        // one-step forecast should track the next slot's value closely.
        let wave = [2.0, 4.0, 6.0, 4.0];
        let mut f = HoltWintersForecaster::paper_default(4);
        let mut t = 0;
        for cycle in 0..6 {
            for (i, &d) in wave.iter().enumerate() {
                if cycle >= 4 {
                    let pred = f.forecast(SECOND).expect("warm");
                    assert!(
                        (pred - d).abs() < 0.8,
                        "cycle {cycle} slot {i}: predicted {pred}, actual {d}"
                    );
                }
                f.observe(t, d);
                t += SECOND;
            }
        }
    }

    #[test]
    fn steps_round_up_and_never_hit_zero() {
        assert_eq!(steps_for(SECOND, 2 * SECOND), 1);
        assert_eq!(steps_for(2 * SECOND, 2 * SECOND), 1);
        assert_eq!(steps_for(3 * SECOND, 2 * SECOND), 2);
        assert_eq!(steps_for(SECOND, 0), 1);
    }
}
