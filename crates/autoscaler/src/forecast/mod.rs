//! Demand forecasting: predict offered load before it arrives.
//!
//! Reactive policies only pay off when capacity is instant. The moment
//! provisioning takes real time (`SimParams::provision_lead_time` in the
//! simulator), a policy that reacts *after* the watermark breach eats the
//! whole lead time as an SLO violation: the queue builds while the new
//! nodes boot. This module supplies the other half of the trade —
//! forecasters that extrapolate the demand signal, so a
//! [`PredictivePolicy`] can order capacity `lead_time` *before* the
//! breach.
//!
//! The pieces:
//!
//! - [`Forecaster`] — the model trait: feed it the demand series one
//!   observation at a time ([`Forecaster::observe`]), ask it for the
//!   demand `lead` nanoseconds ahead ([`Forecaster::forecast`]). Three
//!   models ship: [`NaiveForecaster`] (last value — the baseline every
//!   paper makes its models beat), [`LinearTrendForecaster`] (rolling
//!   least-squares trend, the ramp-anticipator), and
//!   [`HoltWintersForecaster`] (additive Holt-Winters with a seasonal
//!   ring, for periodic demand like the diurnal curve). All three are
//!   deterministic arithmetic over the sample stream — no RNG, no clock.
//! - [`ErrorTracker`] — rolling forecast-error accounting (MAPE and
//!   signed bias over a bounded window of *matured* predictions). The
//!   predictive policy reads it as a trust signal: when rolling MAPE
//!   exceeds a guard threshold the policy falls back to its inner
//!   reactive policy, so a mis-modeled workload degrades to reactive
//!   behavior instead of to confidently wrong scaling.
//! - [`backtest()`] — replay any [`LoadTrace`] through a forecaster on a
//!   fixed cadence and score it offline, before wiring it into a live
//!   control loop.
//! - [`PredictivePolicy`] — the [`ScalingPolicy`] that ties it together:
//!   sizes the cluster for the forecast demand at `now + lead_time`,
//!   logs forecast-vs-actual into every decision record, and composes
//!   with [`RegionalPolicy`] for per-region prediction.
//!
//! Demand is measured in node-capacity units — the same offered-load
//! quantity every sizing policy reads via
//! [`Observation::offered_load`](crate::observe::Observation::offered_load),
//! so a forecast of demand is directly a forecast of the neutral cluster
//! size times the target utilization.
//!
//! [`LoadTrace`]: marlin_workload::LoadTrace
//! [`ScalingPolicy`]: crate::policy::ScalingPolicy
//! [`RegionalPolicy`]: crate::regional::RegionalPolicy

pub mod backtest;
pub mod models;
pub mod predictive;

pub use backtest::{backtest, BacktestConfig, BacktestReport};
pub use models::{HoltWintersForecaster, LinearTrendForecaster, NaiveForecaster};
pub use predictive::{PredictiveConfig, PredictivePolicy};

use marlin_common::RegionId;
use marlin_sim::Nanos;
use std::collections::VecDeque;

/// A demand-forecasting model.
///
/// Implementations are pure over the sample stream: the same sequence of
/// [`Forecaster::observe`] calls always yields the same forecasts
/// (determinism is pinned by `tests/forecast.rs`). Samples are expected
/// at a roughly uniform cadence — the control interval in live loops,
/// the backtest cadence offline; models that need a step count for a
/// time horizon derive it from the observed inter-sample spacing.
pub trait Forecaster {
    /// Short model name for reports and logs.
    fn name(&self) -> &'static str;

    /// Record one demand sample (node-capacity units) observed at `at`.
    /// Timestamps must be non-decreasing.
    fn observe(&mut self, at: Nanos, demand: f64);

    /// Forecast the demand `lead` nanoseconds after the last observed
    /// sample, or `None` while the model is still warming up (callers
    /// fall back to reactive behavior until a forecast exists).
    fn forecast(&self, lead: Nanos) -> Option<f64>;
}

/// Relative-error floor: forecast errors are normalized by
/// `max(actual, MAPE_FLOOR)` so a near-idle trace (demand ~0 node-units)
/// cannot blow MAPE up to infinity on rounding noise. Public so every
/// scorer of [`ForecastSample`]s (the harness report's end-of-run
/// accuracy included) uses the same floor as the in-policy
/// [`ErrorTracker`] and [`backtest()`].
pub const MAPE_FLOOR: f64 = 0.25;

/// The one scoring rule every forecast scorer applies: signed relative
/// error `(predicted - actual) / max(actual, MAPE_FLOOR)`. Shared by the
/// in-policy [`ErrorTracker`], the offline [`backtest()`], and the
/// harness report's end-of-run accuracy, so the three views of "how
/// wrong was the model" can never drift apart.
#[must_use]
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    (predicted - actual) / actual.max(MAPE_FLOOR)
}

/// Rolling forecast-error accounting over matured predictions.
///
/// A prediction is *issued* with [`ErrorTracker::expect`] (due time +
/// predicted value) and *matures* when [`ErrorTracker::resolve`] is
/// called with an actual sample at or past the due time. Matured errors
/// enter a bounded rolling window from which [`ErrorTracker::mape`] and
/// [`ErrorTracker::bias`] are read.
#[derive(Clone, Debug)]
pub struct ErrorTracker {
    /// Outstanding predictions `(due, predicted)`, due-ordered.
    pending: VecDeque<(Nanos, f64)>,
    /// Matured signed relative errors `(predicted - actual) / actual`,
    /// newest last, bounded to the rolling window.
    errors: VecDeque<f64>,
    /// Rolling window length in matured predictions.
    window: usize,
}

impl ErrorTracker {
    /// A tracker with a rolling window of `window` matured predictions.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "the rolling window needs at least one slot");
        ErrorTracker {
            pending: VecDeque::new(),
            errors: VecDeque::new(),
            window,
        }
    }

    /// Register a prediction of `predicted` demand for time `due`.
    pub fn expect(&mut self, due: Nanos, predicted: f64) {
        self.pending.push_back((due, predicted));
    }

    /// Mature every prediction due at or before `now` against the
    /// `actual` demand measured at `now`, pushing their errors into the
    /// rolling window.
    pub fn resolve(&mut self, now: Nanos, actual: f64) {
        while let Some(&(due, predicted)) = self.pending.front() {
            if due > now {
                break;
            }
            self.pending.pop_front();
            self.errors.push_back(relative_error(predicted, actual));
            while self.errors.len() > self.window {
                self.errors.pop_front();
            }
        }
    }

    /// Matured predictions currently in the rolling window.
    #[must_use]
    pub fn resolved(&self) -> usize {
        self.errors.len()
    }

    /// Rolling mean absolute percentage error (0 = perfect), or `None`
    /// before any prediction has matured.
    #[must_use]
    pub fn mape(&self) -> Option<f64> {
        (!self.errors.is_empty())
            .then(|| self.errors.iter().map(|e| e.abs()).sum::<f64>() / self.errors.len() as f64)
    }

    /// Rolling signed relative bias (positive = over-forecasting), or
    /// `None` before any prediction has matured.
    #[must_use]
    pub fn bias(&self) -> Option<f64> {
        (!self.errors.is_empty())
            .then(|| self.errors.iter().sum::<f64>() / self.errors.len() as f64)
    }
}

/// One forecast-vs-actual pair from a predictive policy's decision
/// tick — what the harness logs into every decision record so a run's
/// report shows what the policy *believed* next to what happened.
#[derive(Clone, Debug, PartialEq)]
pub struct ForecastSample {
    /// The region the forecast covers (`None` = whole cluster; filled by
    /// [`RegionalPolicy`](crate::regional::RegionalPolicy) composition).
    pub region: Option<RegionId>,
    /// When the sample was taken (the decision tick).
    pub at: Nanos,
    /// Demand measured at `at`, node-capacity units.
    pub demand: f64,
    /// Forecast demand at `at + lead`, node-capacity units (NaN while
    /// the model is warming up — serialized as `null`).
    pub predicted: f64,
    /// The forecast horizon.
    pub lead: Nanos,
    /// Rolling MAPE over matured predictions (NaN until one matures).
    pub rolling_mape: f64,
    /// Rolling signed bias over matured predictions (NaN until one
    /// matures; positive = over-forecasting).
    pub bias: f64,
    /// Whether this tick's decision fell back to the inner reactive
    /// policy (model cold, rolling MAPE above the guard threshold, or
    /// distress).
    pub fallback: bool,
    /// Whether the tick was a *distress* tick: measured backlog above
    /// the guard, model frozen, and `demand` known to be gated
    /// artificially low. Scorers must not mature predictions against a
    /// distressed sample — the policy's own tracker doesn't.
    pub distressed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_sim::SECOND;

    #[test]
    fn tracker_matures_predictions_in_due_order() {
        let mut t = ErrorTracker::new(8);
        assert_eq!(t.mape(), None);
        t.expect(10 * SECOND, 4.0);
        t.expect(20 * SECOND, 6.0);
        t.resolve(5 * SECOND, 4.0);
        assert_eq!(t.resolved(), 0, "nothing due yet");
        t.resolve(10 * SECOND, 4.0);
        assert_eq!(t.resolved(), 1);
        assert_eq!(t.mape(), Some(0.0), "exact prediction has zero error");
        t.resolve(20 * SECOND, 4.0); // predicted 6.0 → +50% error
        assert_eq!(t.resolved(), 2);
        assert!((t.mape().unwrap() - 0.25).abs() < 1e-12);
        assert!((t.bias().unwrap() - 0.25).abs() < 1e-12, "over-forecast");
    }

    #[test]
    fn tracker_window_is_bounded() {
        let mut t = ErrorTracker::new(2);
        for i in 0..10u64 {
            t.expect(i * SECOND, 1.0);
        }
        t.resolve(10 * SECOND, 1.0);
        assert_eq!(t.resolved(), 2, "window bounds the matured history");
    }

    #[test]
    fn near_zero_actuals_do_not_explode_mape() {
        let mut t = ErrorTracker::new(4);
        t.expect(SECOND, 0.2);
        t.resolve(SECOND, 0.0);
        assert!(t.mape().unwrap() <= 1.0, "floored relative error");
    }
}
