//! Offline forecaster scoring: replay a [`LoadTrace`] and measure error.
//!
//! Before a forecaster is trusted with a live control loop it is scored
//! against the exact demand curve the scenario will replay: the
//! backtester samples the trace on the control cadence through
//! [`LoadTrace::clients_at`] — the *same* step lookup the runners use to
//! activate clients, so the forecaster is graded on precisely the signal
//! it will see — issues a forecast `lead` ahead at every step, and
//! scores each forecast when its due time comes around.

use crate::forecast::Forecaster;
use marlin_sim::Nanos;
use marlin_workload::LoadTrace;
use std::collections::VecDeque;

/// How a backtest replays a trace.
#[derive(Clone, Copy, Debug)]
pub struct BacktestConfig {
    /// Sampling cadence (the live loop's control interval).
    pub cadence: Nanos,
    /// Forecast horizon scored at every sample.
    pub lead: Nanos,
    /// End of the replay.
    pub horizon: Nanos,
}

/// The score of one forecaster over one trace.
#[derive(Clone, Copy, Debug)]
pub struct BacktestReport {
    /// Forecasts that matured inside the horizon.
    pub samples: u64,
    /// Mean absolute percentage error over matured forecasts (0 =
    /// perfect; relative to `max(actual, 0.25)` clients-worth of demand
    /// so idle stretches cannot divide by zero).
    pub mape: f64,
    /// Signed mean relative error (positive = over-forecasting).
    pub bias: f64,
    /// Worst absolute error, in the trace's demand units.
    pub worst_abs_error: f64,
}

/// Replay `trace` through `forecaster` on the configured cadence and
/// score every matured forecast. Demand is the trace's client count
/// taken as-is; scale by offered-load-per-client first if node-capacity
/// units are needed (relative scores are scale-invariant).
#[must_use]
pub fn backtest(
    forecaster: &mut dyn Forecaster,
    trace: &LoadTrace,
    cfg: BacktestConfig,
) -> BacktestReport {
    assert!(cfg.cadence > 0, "the sampling cadence must be positive");
    let mut pending: VecDeque<(Nanos, f64)> = VecDeque::new();
    let (mut n, mut abs_sum, mut signed_sum, mut worst) = (0u64, 0.0f64, 0.0f64, 0.0f64);
    let mut t = 0;
    while t <= cfg.horizon {
        let actual = f64::from(trace.clients_at(t));
        while let Some(&(due, predicted)) = pending.front() {
            if due > t {
                break;
            }
            pending.pop_front();
            let rel = super::relative_error(predicted, actual);
            n += 1;
            abs_sum += rel.abs();
            signed_sum += rel;
            worst = worst.max((predicted - actual).abs());
        }
        forecaster.observe(t, actual);
        if let Some(predicted) = forecaster.forecast(cfg.lead) {
            if t + cfg.lead <= cfg.horizon {
                pending.push_back((t + cfg.lead, predicted));
            }
        }
        t += cfg.cadence;
    }
    BacktestReport {
        samples: n,
        mape: if n > 0 { abs_sum / n as f64 } else { f64::NAN },
        bias: if n > 0 {
            signed_sum / n as f64
        } else {
            f64::NAN
        },
        worst_abs_error: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::{HoltWintersForecaster, LinearTrendForecaster, NaiveForecaster};
    use marlin_sim::SECOND;

    fn cfg(lead: Nanos) -> BacktestConfig {
        BacktestConfig {
            cadence: 2 * SECOND,
            lead,
            horizon: 240 * SECOND,
        }
    }

    #[test]
    fn naive_is_perfect_on_a_constant_trace() {
        let trace = LoadTrace::constant(120);
        let mut f = NaiveForecaster::new();
        let report = backtest(&mut f, &trace, cfg(10 * SECOND));
        assert!(report.samples > 100);
        assert_eq!(report.mape, 0.0);
        assert_eq!(report.bias, 0.0);
        assert_eq!(report.worst_abs_error, 0.0);
    }

    #[test]
    fn trend_beats_naive_on_the_diurnal_ramp() {
        let trace = LoadTrace::paper_diurnal();
        let lead = 10 * SECOND;
        let naive = backtest(&mut NaiveForecaster::new(), &trace, cfg(lead));
        let trend = backtest(&mut LinearTrendForecaster::new(5), &trace, cfg(lead));
        assert!(
            trend.mape < naive.mape,
            "trend {:.4} must beat naive {:.4} on a ramp-heavy curve",
            trend.mape,
            naive.mape
        );
    }

    #[test]
    fn holt_winters_beats_naive_once_the_season_is_learned() {
        // Score only the second half of a 4-cycle diurnal run by
        // replaying 4 cycles and noting HW is cold for cycle 1: its
        // matured samples start later, so compare on the shared window
        // via the full-run aggregate (HW's aggregate still wins).
        let period = 120 * SECOND;
        let trace = LoadTrace::diurnal(100, 600, period, 4 * period, 12);
        let c = BacktestConfig {
            cadence: 2 * SECOND,
            lead: 10 * SECOND,
            horizon: 4 * period,
        };
        let season_len = (period / c.cadence) as usize;
        let naive = backtest(&mut NaiveForecaster::new(), &trace, c);
        let hw = backtest(
            &mut HoltWintersForecaster::paper_default(season_len),
            &trace,
            c,
        );
        assert!(
            hw.mape < naive.mape,
            "holt-winters {:.4} must beat naive {:.4} on periodic demand",
            hw.mape,
            naive.mape
        );
    }
}
