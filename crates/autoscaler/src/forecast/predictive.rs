//! [`PredictivePolicy`]: size the cluster for demand `lead_time` ahead.
//!
//! The policy is the control-loop counterpart of the simulator's
//! provisioning lead time: when `AddNodes` takes real wall-clock time to
//! land, reacting to the current observation is structurally too late —
//! the queue builds for the whole lead. `PredictivePolicy` instead
//! forecasts the demand signal `lead_time` ahead and sizes the cluster
//! for *that*, ordering capacity before the breach.
//!
//! Trust is explicit: the policy tracks its own rolling forecast error
//! (MAPE over matured predictions) and falls back to its inner reactive
//! policy whenever the model is cold or the error exceeds a guard
//! threshold — a mis-modeled workload degrades to reactive scaling, not
//! to confidently wrong scaling. Every tick's forecast, actual, error,
//! and fallback state is exposed through [`ScalingPolicy::forecasts`]
//! and lands in the harness decision log.
//!
//! Composed inside a [`RegionalPolicy`](crate::regional::RegionalPolicy)
//! (one instance per region), each region gets an independent forecaster
//! over its own demand signal and region-targeted proactive adds.
//!
//! [`ScalingPolicy::forecasts`]: crate::policy::ScalingPolicy::forecasts

use crate::forecast::{ErrorTracker, ForecastSample, Forecaster};
use crate::observe::Observation;
use crate::policy::{ScaleAction, ScalingPolicy, SizeBounds};
use marlin_common::NodeId;
use marlin_sim::Nanos;

/// Configuration of [`PredictivePolicy`].
#[derive(Clone, Debug)]
pub struct PredictiveConfig {
    /// How far ahead to size for — at least the actuation path's
    /// provisioning lead time, typically plus one control interval so
    /// capacity is *ready* (not merely ordered) when the demand lands.
    pub lead_time: Nanos,
    /// The utilization the forecast demand is sized against: the target
    /// cluster is `ceil(forecast / target_utilization)` nodes.
    pub target_utilization: f64,
    /// Fall back to the inner policy while the rolling MAPE exceeds this
    /// (e.g. `0.35` = fall back beyond 35% mean error).
    pub mape_guard: f64,
    /// Matured predictions required before the forecast is trusted at
    /// all (a model is not judged on its first guess).
    pub min_resolved: usize,
    /// Fall back to the inner policy whenever the measured backlog
    /// exceeds this many waiting requests per worker. Under saturation a
    /// closed-loop workload *gates* arrivals, so the demand signal reads
    /// artificially low exactly when the cluster is drowning — a
    /// forecaster fed that signal confidently holds the undersized
    /// cluster forever. A deep queue means the signal cannot be trusted;
    /// the reactive fallback's latency escape hatch sees the breach
    /// directly.
    pub distress_queue: f64,
    /// Matured predictions kept in the rolling error window.
    pub error_window: usize,
    /// Consecutive decide ticks the desired size must sit *below* the
    /// live size before a scale-in is issued. Scale-outs act on the
    /// first tick (capacity late is an SLO violation; capacity early is
    /// pennies), but scale-ins follow the forecast only once it has
    /// stopped wobbling — a trend model dips briefly on every dwell of
    /// a staircase ramp, and draining on each dip buys a migration storm
    /// in the middle of the climb.
    pub scale_in_ticks: u32,
    /// Cluster size bounds.
    pub bounds: SizeBounds,
    /// Minimum virtual time between two actions.
    pub cooldown: Nanos,
}

impl PredictiveConfig {
    /// Conservative defaults: size for 60% utilization at the forecast
    /// horizon, trust the model after 3 matured predictions, fall back
    /// beyond 35% rolling MAPE (window 16), 5 s cooldown.
    #[must_use]
    pub fn paper_default(lead_time: Nanos, min_nodes: u32, max_nodes: u32) -> Self {
        PredictiveConfig {
            lead_time,
            target_utilization: 0.60,
            mape_guard: 0.35,
            min_resolved: 3,
            distress_queue: 1.0,
            error_window: 16,
            scale_in_ticks: 3,
            bounds: SizeBounds {
                min_nodes,
                max_nodes,
            },
            cooldown: 5 * marlin_sim::SECOND,
        }
    }
}

/// A proactive sizing policy: forecast demand at `now + lead_time`, hold
/// the cluster at the size that serves it at the target utilization, and
/// fall back to the wrapped reactive policy when the forecast cannot be
/// trusted.
pub struct PredictivePolicy {
    cfg: PredictiveConfig,
    forecaster: Box<dyn Forecaster>,
    inner: Box<dyn ScalingPolicy>,
    tracker: ErrorTracker,
    /// Consecutive decide ticks with `desired < live` (scale-in gate).
    below_streak: u32,
    last_action_at: Option<Nanos>,
    /// Guard against double ingestion when `observe_only` and `decide`
    /// both run on one tick (regional composition).
    last_ingested_at: Option<Nanos>,
    last_sample: Option<ForecastSample>,
}

impl PredictivePolicy {
    /// A predictive policy over `forecaster`, falling back to `inner`.
    #[must_use]
    pub fn new(
        cfg: PredictiveConfig,
        forecaster: Box<dyn Forecaster>,
        inner: Box<dyn ScalingPolicy>,
    ) -> Self {
        assert!(cfg.target_utilization > 0.0 && cfg.target_utilization < 1.0);
        assert!(cfg.mape_guard > 0.0, "the guard must tolerate some error");
        let tracker = ErrorTracker::new(cfg.error_window);
        PredictivePolicy {
            cfg,
            forecaster,
            inner,
            tracker,
            below_streak: 0,
            last_action_at: None,
            last_ingested_at: None,
            last_sample: None,
        }
    }

    /// The wrapped fallback policy.
    #[must_use]
    pub fn inner(&self) -> &dyn ScalingPolicy {
        self.inner.as_ref()
    }

    /// The model's name (for composed report labels).
    #[must_use]
    pub fn forecaster_name(&self) -> &'static str {
        self.forecaster.name()
    }

    /// Feed the demand sample into the forecaster and error tracker, and
    /// refresh `last_sample`. Idempotent per observation timestamp.
    ///
    /// The signal is [`Observation::demand_signal`] — the raw
    /// utilization sum, *not* the backlog-corrected
    /// [`Observation::offered_load`]: backlog spikes are consequences of
    /// sizing mistakes, and a forecaster fed its own policy's mistakes
    /// amplifies them instead of predicting demand.
    fn ingest(&mut self, obs: &Observation) -> (f64, Option<f64>, bool) {
        let demand = obs.demand_signal();
        if self.last_ingested_at == Some(obs.at) {
            let predicted = self
                .last_sample
                .as_ref()
                .map(|s| s.predicted)
                .filter(|p| p.is_finite());
            let fallback = self.last_sample.as_ref().is_some_and(|s| s.fallback);
            return (demand, predicted, fallback);
        }
        self.last_ingested_at = Some(obs.at);
        // Distress freeze: with a deep backlog the closed loop gates
        // arrivals and the measured demand is artificially low. Feeding
        // those samples into the model (or scoring predictions against
        // them) would teach the forecaster that a drowning cluster is a
        // quiet one — freeze the model and hand the tick to the inner
        // policy instead.
        let distressed = obs.queue_depth > self.cfg.distress_queue;
        let predicted = if distressed {
            None
        } else {
            self.tracker.resolve(obs.at, demand);
            self.forecaster.observe(obs.at, demand);
            let predicted = self.forecaster.forecast(self.cfg.lead_time);
            if let Some(p) = predicted {
                self.tracker.expect(obs.at + self.cfg.lead_time, p);
            }
            predicted
        };
        let mape = self.tracker.mape();
        let fallback = predicted.is_none()
            || self.tracker.resolved() < self.cfg.min_resolved
            || mape.is_some_and(|m| m > self.cfg.mape_guard);
        self.last_sample = Some(ForecastSample {
            region: None,
            at: obs.at,
            demand,
            predicted: predicted.unwrap_or(f64::NAN),
            lead: self.cfg.lead_time,
            rolling_mape: mape.unwrap_or(f64::NAN),
            bias: self.tracker.bias().unwrap_or(f64::NAN),
            fallback,
            distressed,
        });
        (demand, predicted, fallback)
    }
}

impl ScalingPolicy for PredictivePolicy {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn decide(&mut self, obs: &Observation) -> Option<ScaleAction> {
        let (demand, predicted, fallback) = self.ingest(obs);
        if fallback {
            let action = self.inner.decide(obs);
            if action.is_some() {
                // A fallback action is still this policy's action: it
                // starts the cooldown and resets the scale-in streak, or
                // a one-tick trust flip around a fallback add could
                // drain the very nodes the add just bought.
                self.last_action_at = Some(obs.at);
                self.below_streak = 0;
            }
            return action;
        }
        let predicted = predicted.expect("fallback covers the cold model");
        // The inner policy still sees every observation so its own state
        // (cooldowns, EMA-free thresholds) stays current for the next
        // fallback stretch.
        self.inner.observe_only(obs);

        // Size for the worse of now and the forecast: prediction is for
        // buying capacity *early*, never for dropping below what the
        // current demand already needs (a trend dipping under a noisy
        // sample must not drain a cluster that is busy right now).
        let sized_for = demand.max(predicted);
        let desired = self
            .cfg
            .bounds
            .clamp((sized_for / self.cfg.target_utilization).ceil().max(0.0) as u32);
        let in_cooldown = self
            .last_action_at
            .is_some_and(|t| obs.at.saturating_sub(t) < self.cfg.cooldown);
        // Capacity already ordered counts: re-buying the shortfall every
        // tick of the provisioning lead would overshoot the bounds.
        let provisioned = obs.live_nodes + obs.pending_nodes();
        if desired > provisioned {
            self.below_streak = 0;
            if in_cooldown {
                return None;
            }
            self.last_action_at = Some(obs.at);
            return Some(ScaleAction::add(desired - provisioned));
        }
        if desired < obs.live_nodes && obs.pending_nodes() == 0 {
            self.below_streak += 1;
            if in_cooldown || self.below_streak < self.cfg.scale_in_ticks {
                return None;
            }
            let shed = (obs.live_nodes - desired) as usize;
            let victims: Vec<NodeId> = obs.coolest_live_nodes().into_iter().take(shed).collect();
            if victims.is_empty() {
                return None;
            }
            self.below_streak = 0;
            self.last_action_at = Some(obs.at);
            return Some(ScaleAction::RemoveNodes { victims });
        }
        self.below_streak = 0;
        None
    }

    fn observe_only(&mut self, obs: &Observation) {
        self.ingest(obs);
        self.inner.observe_only(obs);
    }

    fn forecasts(&self) -> Vec<ForecastSample> {
        self.last_sample.iter().cloned().collect()
    }

    fn p99_ceiling(&self) -> Option<Nanos> {
        self.inner.p99_ceiling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::{LinearTrendForecaster, NaiveForecaster};
    use crate::policy::{ReactiveConfig, ReactivePolicy};
    use marlin_sim::SECOND;

    fn predictive(min: u32, max: u32, lead: Nanos) -> PredictivePolicy {
        let mut cfg = PredictiveConfig::paper_default(lead, min, max);
        cfg.cooldown = 0;
        PredictivePolicy::new(
            cfg,
            Box::new(LinearTrendForecaster::new(4)),
            Box::new(ReactivePolicy::new(ReactiveConfig {
                cooldown: 0,
                ..ReactiveConfig::paper_default(min, max)
            })),
        )
    }

    /// Drive `p` with a uniform-utilization cluster whose demand ramps
    /// `slope` node-units per tick; returns the tick of the first add.
    fn first_add_tick(p: &mut PredictivePolicy, live: u32, base: f64, slope: f64) -> Option<u64> {
        for tick in 0..60u64 {
            let demand = base + slope * tick as f64;
            let obs = Observation::uniform(tick * SECOND, live, demand / f64::from(live));
            if let Some(ScaleAction::AddNodes { .. }) = p.decide(&obs) {
                return Some(tick);
            }
        }
        None
    }

    #[test]
    fn cold_model_falls_back_to_the_inner_reactive_policy() {
        let mut p = predictive(2, 8, 10 * SECOND);
        // First tick: no history at all — the inner policy's watermark
        // logic must decide (0.9 > 0.8 → scale out).
        let action = p.decide(&Observation::uniform(0, 2, 0.9));
        assert!(matches!(action, Some(ScaleAction::AddNodes { .. })));
        assert!(p.forecasts()[0].fallback, "cold model reports fallback");
    }

    #[test]
    fn trusted_ramp_forecast_scales_before_the_watermark() {
        // Demand ramps 0.05 node-units per 1 s tick from 0.2 on 2
        // nodes. The reactive watermark (0.8 mean = 1.6 node-units)
        // breaches at tick 28; the predictive policy — warm after its
        // first few predictions mature — sizes for t+10 s at the 0.6
        // target and must order capacity well before that.
        let mut predictive_policy = predictive(2, 8, 10 * SECOND);
        let predictive_tick = first_add_tick(&mut predictive_policy, 2, 0.2, 0.05)
            .expect("the ramp must provoke a scale-out");
        let mut reactive = ReactivePolicy::new(ReactiveConfig {
            cooldown: 0,
            ..ReactiveConfig::paper_default(2, 8)
        });
        let mut reactive_tick = None;
        for tick in 0..60u64 {
            let demand = 0.2 + 0.05 * tick as f64;
            let obs = Observation::uniform(tick * SECOND, 2, demand / 2.0);
            if let Some(ScaleAction::AddNodes { .. }) = reactive.decide(&obs) {
                reactive_tick = Some(tick);
                break;
            }
        }
        let reactive_tick = reactive_tick.expect("reactive must also fire");
        assert!(
            predictive_tick < reactive_tick,
            "predictive (tick {predictive_tick}) must beat reactive (tick {reactive_tick})"
        );
        let sample = &predictive_policy.forecasts()[0];
        assert!(!sample.fallback, "the trusted model decided");
        assert!(sample.predicted > sample.demand, "a rising forecast");
    }

    #[test]
    fn falling_forecast_drains_back_down() {
        let mut p = predictive(2, 8, 5 * SECOND);
        // Warm up on a high plateau, then ramp down.
        for tick in 0..8u64 {
            let obs = Observation::uniform(tick * SECOND, 6, 0.6);
            let _ = p.decide(&obs);
        }
        let mut removed = false;
        for tick in 8..40u64 {
            let demand = (3.6 - 0.2 * (tick - 8) as f64).max(0.6);
            let obs = Observation::uniform(tick * SECOND, 6, demand / 6.0);
            if let Some(ScaleAction::RemoveNodes { victims }) = p.decide(&obs) {
                assert!(!victims.is_empty());
                removed = true;
                break;
            }
        }
        assert!(removed, "a falling forecast must shed nodes");
    }

    #[test]
    fn bad_forecasts_trip_the_guard_back_to_reactive() {
        // A naive forecaster on a hard alternating signal: every matured
        // prediction is ~100% wrong, so the rolling MAPE blows through
        // the guard and the policy must report fallback.
        let mut cfg = PredictiveConfig::paper_default(SECOND, 2, 8);
        cfg.cooldown = 0;
        let mut p = PredictivePolicy::new(
            cfg,
            Box::new(NaiveForecaster::new()),
            Box::new(ReactivePolicy::new(ReactiveConfig {
                cooldown: 0,
                ..ReactiveConfig::paper_default(2, 8)
            })),
        );
        for tick in 0..20u64 {
            let demand = if tick % 2 == 0 { 0.4 } else { 1.4 };
            let obs = Observation::uniform(tick * SECOND, 2, demand / 2.0);
            let _ = p.decide(&obs);
        }
        let sample = &p.forecasts()[0];
        assert!(
            sample.fallback,
            "rolling MAPE {:.2} must trip the {:.2} guard",
            sample.rolling_mape, 0.35
        );
        assert!(sample.rolling_mape > 0.35);
    }

    #[test]
    fn ingestion_is_idempotent_per_tick() {
        let mut p = predictive(2, 8, 5 * SECOND);
        p.observe_only(&Observation::uniform(0, 2, 0.5));
        // Second sample: the trend model is warm, so the snapshot's
        // `predicted` is finite and comparable.
        let obs = Observation::uniform(SECOND, 2, 0.5);
        p.observe_only(&obs);
        let after_observe = p.forecasts();
        assert!(after_observe[0].predicted.is_finite());
        let _ = p.decide(&obs);
        let after_decide = p.forecasts();
        // NaN-tolerant comparison (rolling error fields are NaN until a
        // prediction matures, and NaN != NaN).
        let eq = |x: f64, y: f64| (x.is_nan() && y.is_nan()) || x == y;
        let (a, b) = (&after_observe[0], &after_decide[0]);
        assert!(
            a.at == b.at
                && eq(a.demand, b.demand)
                && eq(a.predicted, b.predicted)
                && eq(a.rolling_mape, b.rolling_mape)
                && a.fallback == b.fallback,
            "decide on the same tick must not double-feed the model: {a:?} vs {b:?}"
        );
    }
}
