//! The *decide* leg of the control loop: pluggable scaling policies.
//!
//! A [`ScalingPolicy`] maps an [`Observation`] to at most one
//! [`ScaleAction`] per control tick. Three families ship here:
//!
//! - [`ReactivePolicy`] — threshold scaling with a hysteresis band and a
//!   cooldown, the classic rule-based autoscaler. The band keeps an
//!   oscillating signal from flapping the cluster; the cooldown bounds the
//!   action rate even when the signal stays pinned.
//! - [`TargetUtilizationPolicy`] — a PI-style tracker that sizes the
//!   cluster so measured utilization converges on a setpoint, using the
//!   current offered load (utilization × capacity) as the plant model and
//!   an integral term to remove steady-state error.
//! - [`CostBoundedPolicy`] — a decorator enforcing a hard $/hour budget
//!   over any inner policy: scale-outs are clipped to what the budget
//!   affords, and a burn rate above budget forces a scale-in regardless of
//!   load (the *Cost-Intelligent Data Analytics* stance: elasticity is a
//!   spend decision, not only a latency one).
//!
//! Policies are deliberately pure over their inputs plus their own state —
//! no clocks, no I/O — so the same instance drives the synchronous
//! runtime, the discrete-event simulator, and plain unit tests.

use crate::observe::Observation;
use crate::rebalance::GranuleMove;
use marlin_common::{NodeId, RegionId};
use marlin_sim::Nanos;

/// One actuation the controller should perform.
#[derive(Clone, Debug, PartialEq)]
pub enum ScaleAction {
    /// Provision `count` fresh nodes and rebalance granules onto them.
    AddNodes {
        /// Nodes to add.
        count: u32,
        /// Placement: `Some(region)` provisions the nodes in that region
        /// and rebalances region-local granules onto them; `None` leaves
        /// placement to the runner (round-robin across regions).
        region: Option<RegionId>,
    },
    /// Drain and release the listed members.
    RemoveNodes {
        /// Nodes to drain and delete, coolest first.
        victims: Vec<NodeId>,
    },
    /// Migrate individual hot granules without changing the member count.
    Rebalance {
        /// The migrations to issue.
        moves: Vec<GranuleMove>,
    },
}

impl ScaleAction {
    /// A scale-out with runner-chosen placement.
    #[must_use]
    pub fn add(count: u32) -> Self {
        ScaleAction::AddNodes {
            count,
            region: None,
        }
    }

    /// A scale-out targeted at one region.
    #[must_use]
    pub fn add_in(count: u32, region: RegionId) -> Self {
        ScaleAction::AddNodes {
            count,
            region: Some(region),
        }
    }
}

/// A scaling decision procedure.
pub trait ScalingPolicy {
    /// Short name for reports and logs.
    fn name(&self) -> &'static str;

    /// Decide on at most one action for this control tick.
    fn decide(&mut self, obs: &Observation) -> Option<ScaleAction>;

    /// Ingest an observation *without* deciding. Stateless policies need
    /// nothing here (the default is a no-op); policies that learn from
    /// the observation stream — forecasters — use it to keep their
    /// models fed on ticks where another policy claimed the action (the
    /// regional decorator's hottest-first arbitration).
    fn observe_only(&mut self, _obs: &Observation) {}

    /// The forecast snapshots behind the most recent decision, if the
    /// policy forecasts (empty for reactive policies). The harness
    /// driver copies these into the decision log so every record shows
    /// forecast vs. actual.
    fn forecasts(&self) -> Vec<crate::forecast::ForecastSample> {
        Vec::new()
    }

    /// The p99 latency ceiling this policy is armed with, if any — the
    /// SLO the harness derives error-budget and burn-rate series from.
    /// Decorators delegate to their inner policy; policies without a
    /// latency objective return `None` (the default).
    fn p99_ceiling(&self) -> Option<Nanos> {
        None
    }
}

/// Shared sizing bounds for the shipped policies.
#[derive(Clone, Copy, Debug)]
pub struct SizeBounds {
    /// Never scale below this many nodes.
    pub min_nodes: u32,
    /// Never scale above this many nodes.
    pub max_nodes: u32,
}

impl SizeBounds {
    /// Clamp a desired node count into the bounds.
    #[must_use]
    pub fn clamp(&self, nodes: u32) -> u32 {
        nodes.clamp(self.min_nodes, self.max_nodes)
    }
}

// ---------------------------------------------------------------------------
// Hold (never scale) policy

/// A policy that never changes the member count.
///
/// Useful for scripted scenarios (where scale events come from the
/// scenario's action schedule, not a controller) and for planner-only
/// controllers: a [`Controller`](crate::controller::Controller) wrapping
/// `HoldPolicy` plus a [`RebalancePlanner`](crate::rebalance::RebalancePlanner)
/// rebalances hot granules on every tick without ever scaling.
#[derive(Clone, Copy, Debug, Default)]
pub struct HoldPolicy;

impl ScalingPolicy for HoldPolicy {
    fn name(&self) -> &'static str {
        "hold"
    }

    fn decide(&mut self, _obs: &Observation) -> Option<ScaleAction> {
        None
    }
}

// ---------------------------------------------------------------------------
// Reactive threshold policy

/// Configuration of [`ReactivePolicy`].
#[derive(Clone, Debug)]
pub struct ReactiveConfig {
    /// Scale out when mean utilization reaches this watermark.
    pub high_utilization: f64,
    /// Scale in when mean utilization falls to this watermark. The gap
    /// between the two watermarks is the hysteresis band.
    pub low_utilization: f64,
    /// Optional latency escape hatch: scale out when p99 exceeds this even
    /// if utilization looks fine (queueing can hide behind EMA smoothing).
    ///
    /// Under the simulator's per-request CPU model the observed p99 is
    /// built from exact sojourn times, so this hatch fires on *real*
    /// queue build-up — typically one control tick before the analytic
    /// model's smoothed utilization crosses the high watermark (pinned
    /// by `tests/cpu_model.rs`).
    pub p99_ceiling: Option<Nanos>,
    /// Nodes added or removed per action.
    pub step_nodes: u32,
    /// Cluster size bounds.
    pub bounds: SizeBounds,
    /// Minimum virtual time between two actions.
    pub cooldown: Nanos,
}

impl ReactiveConfig {
    /// A conservative default: 80%/35% watermarks, a **fixed step** of
    /// `min_nodes` nodes per action between `min` and `max`, 5 s cooldown.
    ///
    /// The fixed step doubles the cluster only when it sits exactly at
    /// `min_nodes`; from any larger size it adds (or sheds) the same
    /// `min_nodes` increment. This keeps consecutive scale-outs
    /// additive — a true doubling policy would react to a sustained
    /// breach with exponentially growing steps, which the paper's
    /// scripted 8→16 reconfigurations never do.
    #[must_use]
    pub fn paper_default(min_nodes: u32, max_nodes: u32) -> Self {
        ReactiveConfig {
            high_utilization: 0.80,
            low_utilization: 0.35,
            p99_ceiling: None,
            step_nodes: min_nodes.max(1),
            bounds: SizeBounds {
                min_nodes,
                max_nodes,
            },
            cooldown: 5 * marlin_sim::SECOND,
        }
    }
}

/// Threshold scaling with hysteresis and cooldown.
#[derive(Clone, Debug)]
pub struct ReactivePolicy {
    cfg: ReactiveConfig,
    last_action_at: Option<Nanos>,
}

impl ReactivePolicy {
    /// A policy with the given configuration.
    #[must_use]
    pub fn new(cfg: ReactiveConfig) -> Self {
        assert!(
            cfg.low_utilization < cfg.high_utilization,
            "hysteresis band must be non-empty (low < high)"
        );
        ReactivePolicy {
            cfg,
            last_action_at: None,
        }
    }

    fn in_cooldown(&self, at: Nanos) -> bool {
        self.last_action_at
            .is_some_and(|t| at.saturating_sub(t) < self.cfg.cooldown)
    }
}

impl ScalingPolicy for ReactivePolicy {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn p99_ceiling(&self) -> Option<Nanos> {
        self.cfg.p99_ceiling
    }

    fn decide(&mut self, obs: &Observation) -> Option<ScaleAction> {
        if self.in_cooldown(obs.at) {
            return None;
        }
        let util = obs.mean_utilization;
        let p99_breach = self
            .cfg
            .p99_ceiling
            .is_some_and(|ceiling| obs.p99_latency > ceiling);
        // Capacity already ordered counts toward the target: under a
        // provisioning lead time the breach persists while the nodes
        // boot, and re-ordering every post-cooldown tick would buy the
        // same capacity twice (and blow through max_nodes). Pending is
        // always 0 when provisioning is instant.
        let provisioned = obs.live_nodes + obs.pending_nodes();
        if util >= self.cfg.high_utilization || p99_breach {
            if provisioned < self.cfg.bounds.max_nodes {
                let target = self.cfg.bounds.clamp(provisioned + self.cfg.step_nodes);
                self.last_action_at = Some(obs.at);
                return Some(ScaleAction::add(target - provisioned));
            }
            // Hot (or latency-breached) but fully provisioned: hold. A
            // breach must never fall through to the scale-in branch — a
            // saturated cluster can gate arrivals hard enough to pull
            // measured utilization under the low watermark while the
            // backlog is still deep, and draining it then is the death
            // spiral.
            return None;
        }
        if util <= self.cfg.low_utilization
            && obs.live_nodes > self.cfg.bounds.min_nodes
            // Never drain while ordered capacity is still provisioning:
            // the spike that bought it may have passed, but releasing
            // live nodes now just swaps them for the joiners (paying the
            // join + rebalance twice). Let the order land, then shed.
            && obs.pending_nodes() == 0
        {
            let target = self
                .cfg
                .bounds
                .clamp(obs.live_nodes.saturating_sub(self.cfg.step_nodes));
            let shed = (obs.live_nodes - target) as usize;
            let victims: Vec<NodeId> = obs.coolest_live_nodes().into_iter().take(shed).collect();
            if victims.is_empty() {
                return None;
            }
            self.last_action_at = Some(obs.at);
            return Some(ScaleAction::RemoveNodes { victims });
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Target-utilization PI policy

/// Configuration of [`TargetUtilizationPolicy`].
#[derive(Clone, Debug)]
pub struct TargetUtilizationConfig {
    /// The utilization setpoint the controller converges on.
    pub target_utilization: f64,
    /// Proportional gain on the sizing error, in nodes per node of error.
    pub kp: f64,
    /// Integral gain, in nodes per node-second of accumulated error.
    pub ki: f64,
    /// Ignore sizing errors smaller than this many nodes (actuation is
    /// quantized anyway; the deadband stops integral jitter from acting).
    pub deadband_nodes: f64,
    /// Cluster size bounds.
    pub bounds: SizeBounds,
    /// Minimum virtual time between two actions.
    pub cooldown: Nanos,
}

impl TargetUtilizationConfig {
    /// Converge on 60% utilization with gentle gains.
    #[must_use]
    pub fn paper_default(min_nodes: u32, max_nodes: u32) -> Self {
        TargetUtilizationConfig {
            target_utilization: 0.60,
            kp: 0.8,
            ki: 0.05,
            deadband_nodes: 0.6,
            bounds: SizeBounds {
                min_nodes,
                max_nodes,
            },
            cooldown: 5 * marlin_sim::SECOND,
        }
    }
}

/// PI-style tracker of a utilization setpoint.
///
/// The plant model: offered load (in node-capacity units) is the sum of
/// the raw per-node utilizations, so the load-neutral cluster size is
/// `offered / target`. The proportional term acts on that sizing error;
/// the integral term accumulates error over time to remove steady-state
/// offset (e.g. when quantization keeps the cluster one node small).
#[derive(Clone, Debug)]
pub struct TargetUtilizationPolicy {
    cfg: TargetUtilizationConfig,
    integral_node_seconds: f64,
    last_seen_at: Option<Nanos>,
    last_action_at: Option<Nanos>,
}

impl TargetUtilizationPolicy {
    /// A policy with the given configuration.
    #[must_use]
    pub fn new(cfg: TargetUtilizationConfig) -> Self {
        assert!(cfg.target_utilization > 0.0 && cfg.target_utilization < 1.0);
        TargetUtilizationPolicy {
            cfg,
            integral_node_seconds: 0.0,
            last_seen_at: None,
            last_action_at: None,
        }
    }
}

impl ScalingPolicy for TargetUtilizationPolicy {
    fn name(&self) -> &'static str {
        "target-utilization"
    }

    fn decide(&mut self, obs: &Observation) -> Option<ScaleAction> {
        let live = f64::from(obs.live_nodes);
        // The plant signal: offered load in node-capacity units. See
        // `Observation::offered_load` for why the unexplained-queue
        // correction keeps both CPU-model observation dialects honest
        // without double counting (the regression tests below pin it).
        let offered = obs.offered_load();
        let neutral = offered / self.cfg.target_utilization;
        let error = neutral - live;

        // Integrate the sizing error over observed time.
        let dt_s = self.last_seen_at.map_or(0.0, |t| {
            obs.at.saturating_sub(t) as f64 / marlin_sim::SECOND as f64
        });
        self.last_seen_at = Some(obs.at);
        self.integral_node_seconds += error * dt_s;
        // Anti-windup: cap the integral's authority at one step of the
        // bounds span so a long saturation cannot cause a giant overshoot.
        let span = f64::from(self.cfg.bounds.max_nodes - self.cfg.bounds.min_nodes).max(1.0);
        let cap = span / self.cfg.ki.max(1e-9);
        self.integral_node_seconds = self.integral_node_seconds.clamp(-cap, cap);

        if self
            .last_action_at
            .is_some_and(|t| obs.at.saturating_sub(t) < self.cfg.cooldown)
        {
            return None;
        }

        let correction = self.cfg.kp * error + self.cfg.ki * self.integral_node_seconds;
        if correction.abs() < self.cfg.deadband_nodes {
            return None;
        }
        let desired = self
            .cfg
            .bounds
            .clamp((live + correction).round().max(0.0) as u32);
        // Count capacity already ordered (provisioning lead in flight) so
        // the same shortfall is not bought twice; 0 with instant
        // provisioning.
        let provisioned = obs.live_nodes + obs.pending_nodes();
        if desired > provisioned {
            self.last_action_at = Some(obs.at);
            // Acting resets the accumulated error: the plant changes.
            self.integral_node_seconds = 0.0;
            Some(ScaleAction::add(desired - provisioned))
        } else if desired < obs.live_nodes && obs.pending_nodes() == 0 {
            // As in `ReactivePolicy`: never drain while an order is
            // still provisioning — swapping live nodes for joiners pays
            // the join twice.
            let shed = (obs.live_nodes - desired) as usize;
            let victims: Vec<NodeId> = obs.coolest_live_nodes().into_iter().take(shed).collect();
            if victims.is_empty() {
                return None;
            }
            self.last_action_at = Some(obs.at);
            self.integral_node_seconds = 0.0;
            Some(ScaleAction::RemoveNodes { victims })
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Cost-bounded decorator

/// A hard spending cap over any inner policy.
#[derive(Clone, Debug)]
pub struct CostBoundedPolicy<P> {
    inner: P,
    /// The budget the cluster must never exceed, $/hour.
    budget_per_hour: f64,
    /// Marginal cost of one node, $/hour.
    node_hourly: f64,
    /// Never drain below this many nodes even to meet the budget.
    min_nodes: u32,
    /// Minimum virtual time between two *forced* scale-ins. Drains take
    /// time to complete and the burn rate only drops once the victims are
    /// released; without this guard the breach branch would re-fire every
    /// control tick and shed a fresh set of nodes for one overage.
    forced_cooldown: Nanos,
    last_forced_at: Option<Nanos>,
}

impl<P: ScalingPolicy> CostBoundedPolicy<P> {
    /// Bound `inner` by `budget_per_hour`, pricing nodes at `node_hourly`.
    #[must_use]
    pub fn new(inner: P, budget_per_hour: f64, node_hourly: f64, min_nodes: u32) -> Self {
        assert!(node_hourly > 0.0, "node price must be positive");
        CostBoundedPolicy {
            inner,
            budget_per_hour,
            node_hourly,
            min_nodes,
            forced_cooldown: 30 * marlin_sim::SECOND,
            last_forced_at: None,
        }
    }

    /// Override how long a forced scale-in suppresses the next one
    /// (default 30 s — enough for a drain to finish and the burn rate to
    /// reflect it).
    #[must_use]
    pub fn with_forced_cooldown(mut self, cooldown: Nanos) -> Self {
        self.forced_cooldown = cooldown;
        self
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Would the burn rate stay within budget after adding `count` nodes?
    fn affords(&self, obs: &Observation, count: u32) -> bool {
        obs.dollars_per_hour + f64::from(count) * self.node_hourly <= self.budget_per_hour + 1e-9
    }
}

impl<P: ScalingPolicy> ScalingPolicy for CostBoundedPolicy<P> {
    fn name(&self) -> &'static str {
        "cost-bounded"
    }

    fn decide(&mut self, obs: &Observation) -> Option<ScaleAction> {
        // Budget breach overrides load: shed nodes until the burn rate
        // fits, regardless of what the inner policy wants. The forced
        // cooldown gives the previous shed time to drain and show up in
        // the burn rate before another is considered.
        if obs.dollars_per_hour > self.budget_per_hour + 1e-9 {
            // The budget takes the tick, but the inner policy must still
            // see the observation — a wrapped forecaster that misses
            // breach-stretch samples would resume with a stale model.
            self.inner.observe_only(obs);
            let cooling = self
                .last_forced_at
                .is_some_and(|t| obs.at.saturating_sub(t) < self.forced_cooldown);
            if cooling {
                return None;
            }
            let excess = obs.dollars_per_hour - self.budget_per_hour;
            let shed = (excess / self.node_hourly).ceil() as u32;
            let max_shed = obs.live_nodes.saturating_sub(self.min_nodes);
            let shed = shed.min(max_shed) as usize;
            let victims: Vec<NodeId> = obs.coolest_live_nodes().into_iter().take(shed).collect();
            if victims.is_empty() {
                return None;
            }
            self.last_forced_at = Some(obs.at);
            return Some(ScaleAction::RemoveNodes { victims });
        }
        match self.inner.decide(obs)? {
            ScaleAction::AddNodes { count, region } => {
                // Clip the scale-out to what the budget affords (the
                // placement request rides along unchanged).
                let mut affordable = count;
                while affordable > 0 && !self.affords(obs, affordable) {
                    affordable -= 1;
                }
                (affordable > 0).then_some(ScaleAction::AddNodes {
                    count: affordable,
                    region,
                })
            }
            other => Some(other),
        }
    }

    fn observe_only(&mut self, obs: &Observation) {
        self.inner.observe_only(obs);
    }

    fn forecasts(&self) -> Vec<crate::forecast::ForecastSample> {
        self.inner.forecasts()
    }

    fn p99_ceiling(&self) -> Option<Nanos> {
        self.inner.p99_ceiling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reactive(min: u32, max: u32, cooldown: Nanos) -> ReactivePolicy {
        ReactivePolicy::new(ReactiveConfig {
            cooldown,
            ..ReactiveConfig::paper_default(min, max)
        })
    }

    #[test]
    fn scales_out_at_the_high_watermark() {
        let mut p = reactive(4, 16, 0);
        let action = p.decide(&Observation::uniform(0, 4, 0.9));
        assert_eq!(action, Some(ScaleAction::add(4)));
    }

    #[test]
    fn paper_default_step_is_fixed_not_doubling() {
        // Regression: the rustdoc used to promise "one-step doubling",
        // but `step_nodes = min_nodes.max(1)` is a fixed increment — it
        // doubles only from `min_nodes`. Pin the fixed-step semantics.
        let mut p = reactive(4, 32, 0);
        assert_eq!(
            p.decide(&Observation::uniform(0, 4, 0.9)),
            Some(ScaleAction::add(4)),
            "from min_nodes the fixed step happens to double"
        );
        let mut p = reactive(4, 32, 0);
        assert_eq!(
            p.decide(&Observation::uniform(0, 16, 0.9)),
            Some(ScaleAction::add(4)),
            "from 16 nodes the step stays 4, not a doubling to 32"
        );
        let mut p = reactive(4, 32, 0);
        match p.decide(&Observation::uniform(0, 16, 0.1)) {
            Some(ScaleAction::RemoveNodes { victims }) => {
                assert_eq!(victims.len(), 4, "scale-in uses the same fixed step");
            }
            other => panic!("expected a fixed-step scale-in, got {other:?}"),
        }
    }

    #[test]
    fn scales_in_at_the_low_watermark_with_coolest_victims() {
        let mut p = reactive(4, 16, 0);
        let mut obs = Observation::uniform(0, 8, 0.2);
        obs.node_loads[3].utilization = 0.05;
        match p.decide(&obs) {
            Some(ScaleAction::RemoveNodes { victims }) => {
                assert_eq!(victims.len(), 4);
                assert_eq!(victims[0], NodeId(3), "coolest node drains first");
            }
            other => panic!("expected a scale-in, got {other:?}"),
        }
    }

    #[test]
    fn respects_bounds() {
        let mut p = reactive(4, 8, 0);
        assert_eq!(
            p.decide(&Observation::uniform(0, 8, 0.95)),
            None,
            "already at max_nodes"
        );
        let mut p = reactive(4, 8, 0);
        assert_eq!(
            p.decide(&Observation::uniform(0, 4, 0.01)),
            None,
            "already at min_nodes"
        );
    }

    #[test]
    fn hysteresis_band_ignores_mid_range_oscillation() {
        // The signal oscillates hard between the watermarks: a bare
        // threshold policy (band collapsed to a point) would act every
        // tick; the hysteresis band must absorb all of it.
        let mut p = reactive(4, 16, 0);
        for tick in 0..50u64 {
            let util = if tick % 2 == 0 { 0.78 } else { 0.37 };
            let obs = Observation::uniform(tick * marlin_sim::SECOND, 8, util);
            assert_eq!(p.decide(&obs), None, "tick {tick} must not act");
        }
    }

    #[test]
    fn cooldown_suppresses_back_to_back_actions() {
        let cooldown = 10 * marlin_sim::SECOND;
        let mut p = reactive(4, 32, cooldown);
        let first = p.decide(&Observation::uniform(0, 4, 0.9));
        assert!(matches!(first, Some(ScaleAction::AddNodes { .. })));
        // Still saturated immediately after: cooldown holds the line.
        for dt in 1..10u64 {
            let obs = Observation::uniform(dt * marlin_sim::SECOND, 8, 0.9);
            assert_eq!(p.decide(&obs), None, "t={dt}s is inside the cooldown");
        }
        // After the cooldown the policy may act again.
        let later = p.decide(&Observation::uniform(11 * marlin_sim::SECOND, 8, 0.9));
        assert!(matches!(later, Some(ScaleAction::AddNodes { .. })));
    }

    #[test]
    fn p99_ceiling_triggers_scale_out_at_moderate_utilization() {
        let mut cfg = ReactiveConfig::paper_default(4, 16);
        cfg.p99_ceiling = Some(50 * marlin_sim::MILLISECOND);
        cfg.cooldown = 0;
        let mut p = ReactivePolicy::new(cfg);
        let mut obs = Observation::uniform(0, 4, 0.6);
        obs.p99_latency = 80 * marlin_sim::MILLISECOND;
        assert!(matches!(p.decide(&obs), Some(ScaleAction::AddNodes { .. })));
    }

    #[test]
    fn target_utilization_converges_and_respects_deadband() {
        let mut p = TargetUtilizationPolicy::new(TargetUtilizationConfig {
            cooldown: 0,
            ..TargetUtilizationConfig::paper_default(2, 32)
        });
        // 8 nodes at 0.9 utilization: offered 7.2 node-units, neutral size
        // at 0.6 target is 12 → scale out by ~kp*(12-8)≈3.
        let action = p.decide(&Observation::uniform(0, 8, 0.9));
        match action {
            Some(ScaleAction::AddNodes { count, .. }) => assert!((2..=4).contains(&count)),
            other => panic!("expected scale-out, got {other:?}"),
        }
        // Near the setpoint the deadband keeps it quiet.
        let mut p = TargetUtilizationPolicy::new(TargetUtilizationConfig {
            cooldown: 0,
            ..TargetUtilizationConfig::paper_default(2, 32)
        });
        assert_eq!(p.decide(&Observation::uniform(0, 8, 0.62)), None);
    }

    #[test]
    fn backlog_is_not_double_counted_in_the_plant_model() {
        // Regression: the offered load used to be computed as
        // `mean_utilization * live + queue_depth * live`. With a raw
        // (unclamped) mean — which `Observation::uniform` and any runner
        // reporting per-node overload produce — every unit of backlog was
        // counted once in the mean and again via `queue_depth`, doubling
        // the sizing error under any queue.
        let sized = |mut obs: Observation| {
            let mut p = TargetUtilizationPolicy::new(TargetUtilizationConfig {
                cooldown: 0,
                ..TargetUtilizationConfig::paper_default(2, 64)
            });
            obs.queue_depth = 0.2; // the docs' value for 1.2 raw per node
            match p.decide(&obs) {
                Some(ScaleAction::AddNodes { count, .. }) => count,
                other => panic!("expected a scale-out, got {other:?}"),
            }
        };
        // 4 nodes at 1.2 raw utilization: offered is 4.8 node-units, the
        // neutral size at 0.6 target is 8, error 4 → kp*4 ≈ +3.
        let count = sized(Observation::uniform(0, 4, 1.2));
        assert_eq!(count, 3, "a small queue must not inflate the sizing");
        // The same cluster state reported with a clamped mean must size
        // identically — the fix makes the two encodings agree.
        let mut clamped = Observation::uniform(0, 4, 1.2);
        clamped.mean_utilization = 1.0;
        assert_eq!(sized(clamped), count);
        // The old formula would have used offered = (1.2 + 0.2) * 4 = 5.6
        // → error 5.33 → +4: one full node of overshoot.
    }

    #[test]
    fn measured_queue_beyond_utilization_enters_the_plant_model() {
        // The per-request CPU model's observation dialect: measured
        // utilizations self-limit near 1 under closed-loop saturation
        // (completions gate arrivals) while the real backlog is
        // reported only in `queue_depth`. The plant model must inject
        // that unexplained backlog, or a deep queue sizes like a
        // barely-full cluster.
        let mut p = TargetUtilizationPolicy::new(TargetUtilizationConfig {
            cooldown: 0,
            ..TargetUtilizationConfig::paper_default(2, 64)
        });
        let mut obs = Observation::uniform(0, 4, 1.0);
        obs.queue_depth = 2.0; // 2 requests queued per worker, measured
                               // Offered = 4×1.0 + (2.0 − 0.0)×4 = 12; neutral at 0.6 = 20;
                               // error 16 → kp·16 ≈ +13.
        match p.decide(&obs) {
            Some(ScaleAction::AddNodes { count, .. }) => {
                assert!(count >= 8, "deep backlog must size up hard, got +{count}");
            }
            other => panic!("expected a large scale-out, got {other:?}"),
        }
        // Same queue_depth fully explained by over-1 utilizations (the
        // analytic dialect) must NOT be added again on top.
        let mut p = TargetUtilizationPolicy::new(TargetUtilizationConfig {
            cooldown: 0,
            ..TargetUtilizationConfig::paper_default(2, 64)
        });
        let mut analytic = Observation::uniform(0, 4, 3.0);
        analytic.queue_depth = 2.0; // == mean excess of 3.0-utilization nodes
                                    // Offered = 4×3.0 + (2.0 − 2.0)×4 = 12: identical sizing.
        match p.decide(&analytic) {
            Some(ScaleAction::AddNodes { count, .. }) => {
                assert!(
                    count >= 8,
                    "analytic dialect sizes identically, got +{count}"
                );
            }
            other => panic!("expected a large scale-out, got {other:?}"),
        }
    }

    #[test]
    fn cost_bound_clips_scale_out_to_budget() {
        let node_hourly = 0.192;
        let budget = 8.0 * node_hourly; // affords 8 nodes total
        let mut p = CostBoundedPolicy::new(reactive(4, 32, 0), budget, node_hourly, 4);
        let mut obs = Observation::uniform(0, 6, 0.95);
        obs.dollars_per_hour = 6.0 * node_hourly;
        // Inner wants +6 (doubling), budget affords only +2.
        assert_eq!(p.decide(&obs), Some(ScaleAction::add(2)));
    }

    #[test]
    fn cost_bound_forces_scale_in_when_over_budget() {
        let node_hourly = 0.192;
        let budget = 4.0 * node_hourly;
        let mut p = CostBoundedPolicy::new(reactive(2, 32, 0), budget, node_hourly, 2);
        let mut obs = Observation::uniform(0, 8, 0.9); // busy AND over budget
        obs.dollars_per_hour = 8.0 * node_hourly;
        match p.decide(&obs) {
            Some(ScaleAction::RemoveNodes { victims }) => assert_eq!(victims.len(), 4),
            other => panic!("expected forced scale-in, got {other:?}"),
        }
    }

    #[test]
    fn forced_scale_in_does_not_refire_while_the_drain_is_in_flight() {
        let node_hourly = 0.192;
        let budget = 7.0 * node_hourly; // 1 node over budget at 8 nodes
        let mut p = CostBoundedPolicy::new(reactive(2, 32, 0), budget, node_hourly, 2)
            .with_forced_cooldown(10 * marlin_sim::SECOND);
        // Tick 1: breach → shed exactly the overage.
        let mut obs = Observation::uniform(0, 8, 0.5);
        obs.dollars_per_hour = 8.0 * node_hourly;
        match p.decide(&obs) {
            Some(ScaleAction::RemoveNodes { victims }) => assert_eq!(victims.len(), 1),
            other => panic!("expected a 1-node shed, got {other:?}"),
        }
        // The drain takes a while: the burn rate still reads 8 nodes on
        // the next ticks. The cooldown must hold the line instead of
        // shedding a fresh victim every observation.
        for dt in 1..10u64 {
            let mut obs = Observation::uniform(dt * marlin_sim::SECOND, 8, 0.5);
            obs.dollars_per_hour = 8.0 * node_hourly;
            assert_eq!(p.decide(&obs), None, "t={dt}s must not re-shed");
        }
        // Once the drain has landed the burn rate fits and nothing fires.
        let mut obs = Observation::uniform(20 * marlin_sim::SECOND, 7, 0.5);
        obs.dollars_per_hour = 7.0 * node_hourly;
        assert_eq!(p.decide(&obs), None);
    }

    #[test]
    fn scale_in_waits_for_in_flight_provisioning() {
        // Regression: with a provisioning lead, util can dip under the
        // low watermark while the ordered nodes are still booting; the
        // scale-in branches used to count only live nodes and would swap
        // live members for the joiners.
        use crate::observe::NodeLoad;
        let pend = |mut obs: Observation| {
            obs.node_loads.push(NodeLoad {
                node: NodeId(99),
                alive: false,
                pending: true,
                ..NodeLoad::default()
            });
            obs
        };
        let mut p = reactive(4, 16, 0);
        assert_eq!(
            p.decide(&pend(Observation::uniform(0, 8, 0.2))),
            None,
            "reactive must not drain while an order is in flight"
        );
        let mut p = TargetUtilizationPolicy::new(TargetUtilizationConfig {
            cooldown: 0,
            ..TargetUtilizationConfig::paper_default(2, 32)
        });
        assert_eq!(
            p.decide(&pend(Observation::uniform(0, 8, 0.1))),
            None,
            "target-utilization must not drain while an order is in flight"
        );
    }

    #[test]
    fn cost_bound_forwards_observation_and_forecast_surfaces() {
        // Regression: the decorator used to swallow `observe_only` and
        // `forecasts`, starving a wrapped forecaster of samples on
        // budget-breach ticks and hiding its snapshots from reports.
        struct Probe {
            observed: u32,
        }
        impl ScalingPolicy for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn decide(&mut self, _obs: &Observation) -> Option<ScaleAction> {
                None
            }
            fn observe_only(&mut self, _obs: &Observation) {
                self.observed += 1;
            }
            fn forecasts(&self) -> Vec<crate::forecast::ForecastSample> {
                vec![crate::forecast::ForecastSample {
                    region: None,
                    at: 0,
                    demand: 1.0,
                    predicted: 2.0,
                    lead: 0,
                    rolling_mape: 0.0,
                    bias: 0.0,
                    fallback: false,
                    distressed: false,
                }]
            }
        }
        let node_hourly = 0.192;
        let mut p =
            CostBoundedPolicy::new(Probe { observed: 0 }, 4.0 * node_hourly, node_hourly, 2);
        assert_eq!(p.forecasts().len(), 1, "forecasts pass through");
        p.observe_only(&Observation::uniform(0, 4, 0.5));
        assert_eq!(p.inner().observed, 1);
        // A budget breach claims the tick but still feeds the inner.
        let mut over = Observation::uniform(marlin_sim::SECOND, 8, 0.5);
        over.dollars_per_hour = 8.0 * node_hourly;
        assert!(matches!(
            p.decide(&over),
            Some(ScaleAction::RemoveNodes { .. })
        ));
        assert_eq!(p.inner().observed, 2, "breach ticks are observed too");
    }

    #[test]
    fn cost_bound_never_exceeds_budget_over_a_rising_ramp() {
        let node_hourly = 0.192;
        let budget = 10.0 * node_hourly;
        let mut p = CostBoundedPolicy::new(reactive(2, 64, 0), budget, node_hourly, 2);
        let mut live = 2u32;
        for tick in 0..100u64 {
            let mut obs = Observation::uniform(tick * marlin_sim::SECOND, live, 0.95);
            obs.dollars_per_hour = f64::from(live) * node_hourly;
            if let Some(ScaleAction::AddNodes { count, .. }) = p.decide(&obs) {
                live += count;
            }
            assert!(
                f64::from(live) * node_hourly <= budget + 1e-9,
                "burn rate exceeded budget at tick {tick}: {live} nodes"
            );
        }
        assert_eq!(live, 10, "the ramp should stop exactly at the budget");
    }
}
