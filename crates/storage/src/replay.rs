//! The log replay service: materializes WAL records into the page store.
//!
//! "The storage materializes WAL into the data pages asynchronously through
//! the log replay service, eliminating the need to write back dirty pages
//! from compute nodes" (§3.1). The service is pull-driven here: callers (a
//! background thread in real time, the storage actor in the simulator)
//! invoke [`ReplayService::step`] / [`ReplayService::replay_until`] to
//! advance materialization. This keeps the crate runtime-agnostic while
//! modeling the same lag-then-catch-up behavior.

use crate::log::SharedLog;
use crate::page::PageStore;
use crate::wire::decode_page_updates;
use marlin_common::{LogId, Lsn};

/// Couples one log to the (shared) page store and tracks replay progress.
#[derive(Clone, Debug)]
pub struct ReplayService {
    id: LogId,
    log: SharedLog,
    store: PageStore,
}

impl ReplayService {
    /// Create a replay service for log `id` feeding `store`.
    #[must_use]
    pub fn new(id: LogId, log: SharedLog, store: PageStore) -> Self {
        ReplayService { id, log, store }
    }

    /// The log's identity.
    #[must_use]
    pub fn id(&self) -> LogId {
        self.id
    }

    /// The page store being fed.
    #[must_use]
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The log being replayed.
    #[must_use]
    pub fn log(&self) -> &SharedLog {
        &self.log
    }

    /// Replay at most `max_records` pending records. Returns the number of
    /// records applied (0 means fully caught up).
    pub fn step(&self, max_records: usize) -> usize {
        let from = self.store.replayed_lsn(self.id);
        let pending = self.log.read_after(from);
        let take = pending.len().min(max_records);
        for record in &pending[..take] {
            // Records that don't carry page updates (e.g. coordination
            // records interpreted by the compute layer) still advance the
            // replay watermark so GetPage@LSN does not stall behind them.
            let updates = decode_page_updates(&record.payload).unwrap_or_default();
            self.store.apply(self.id, record.lsn, &updates);
        }
        take
    }

    /// Replay everything up to (at least) `target`. Returns the records
    /// applied. The target may exceed the log end; replay stops at the
    /// log's current tail.
    pub fn replay_until(&self, target: Lsn) -> usize {
        let mut applied = 0;
        while self.store.replayed_lsn(self.id) < target {
            let n = self.step(usize::MAX);
            applied += n;
            if n == 0 {
                break; // log tail reached
            }
        }
        applied
    }

    /// Replay lag in records (log end minus replay watermark).
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.log
            .end_lsn()
            .0
            .saturating_sub(self.store.replayed_lsn(self.id).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_page_updates, PageUpdate, PageWrite};
    use bytes::Bytes;
    use marlin_common::{GranuleId, NodeId, PageId, StorageError, TableId};

    const LOG: LogId = LogId::GLog(NodeId(0));

    fn pid(i: u32) -> PageId {
        PageId {
            table: TableId(0),
            granule: GranuleId(0),
            index: i,
        }
    }

    fn page_record(i: u32, content: &'static str) -> Bytes {
        encode_page_updates(&[PageUpdate {
            page: pid(i),
            write: PageWrite::Full(Bytes::from_static(content.as_bytes())),
        }])
    }

    #[test]
    fn step_applies_in_order_and_reports_progress() {
        let log = SharedLog::new();
        let store = PageStore::new();
        let replay = ReplayService::new(LOG, log.clone(), store.clone());
        log.append(vec![
            page_record(0, "a"),
            page_record(1, "b"),
            page_record(0, "c"),
        ]);
        assert_eq!(replay.lag(), 3);
        assert_eq!(replay.step(2), 2);
        assert_eq!(replay.lag(), 1);
        assert_eq!(replay.step(10), 1);
        assert_eq!(replay.lag(), 0);
        assert_eq!(
            store.get_page(pid(0), LOG, Lsn(3)).unwrap().base,
            Bytes::from_static(b"c")
        );
    }

    #[test]
    fn replay_until_unblocks_get_page() {
        let log = SharedLog::new();
        let store = PageStore::new();
        let replay = ReplayService::new(LOG, log.clone(), store.clone());
        log.append(vec![page_record(0, "v1")]);
        assert!(matches!(
            store.get_page(pid(0), LOG, Lsn(1)),
            Err(StorageError::ReplayLag { .. })
        ));
        replay.replay_until(Lsn(1));
        assert!(store.get_page(pid(0), LOG, Lsn(1)).is_ok());
    }

    #[test]
    fn non_page_records_advance_watermark() {
        let log = SharedLog::new();
        let store = PageStore::new();
        let replay = ReplayService::new(LOG, log.clone(), store.clone());
        // An opaque coordination record the page store can't decode.
        log.append(vec![Bytes::from_static(b"\xFF\xFF")]);
        log.append(vec![page_record(0, "after")]);
        replay.replay_until(Lsn(2));
        assert_eq!(store.replayed_lsn(LOG), Lsn(2));
        assert!(store.get_page(pid(0), LOG, Lsn(2)).is_ok());
    }

    #[test]
    fn replay_until_past_tail_stops_gracefully() {
        let log = SharedLog::new();
        let store = PageStore::new();
        let replay = ReplayService::new(LOG, log.clone(), store.clone());
        log.append(vec![page_record(0, "only")]);
        assert_eq!(replay.replay_until(Lsn(100)), 1);
        assert_eq!(store.replayed_lsn(LOG), Lsn(1));
    }

    #[test]
    fn two_logs_feed_one_store_independently() {
        let store = PageStore::new();
        let log_a = SharedLog::new();
        let log_b = SharedLog::new();
        let ra = ReplayService::new(LogId::GLog(NodeId(1)), log_a.clone(), store.clone());
        let rb = ReplayService::new(LogId::GLog(NodeId(2)), log_b.clone(), store.clone());
        log_a.append(vec![page_record(0, "a")]);
        log_b.append(vec![page_record(1, "b")]);
        ra.replay_until(Lsn(1));
        rb.replay_until(Lsn(1));
        assert_eq!(store.page_count(), 2);
        assert_eq!(store.replayed_lsn(LogId::GLog(NodeId(1))), Lsn(1));
        assert_eq!(store.replayed_lsn(LogId::GLog(NodeId(2))), Lsn(1));
    }
}
