//! The page store: materialized pages served via `GetPage@LSN`.
//!
//! Pages are reconstructed from the logs by the replay service; compute
//! nodes never write pages back (§3.1). The store is **shared across all
//! logs** — pages are keyed by [`PageId`] alone — because a granule's
//! writer changes over its lifetime (migrations move ownership and with it
//! the WAL that subsequent updates land in), yet readers must see one
//! coherent page. Exclusive granule ownership (paper invariant I0)
//! guarantees a granule's updates are serial across logs, so per-page
//! content stays well-defined.
//!
//! `GetPage(pageId, log, LSN)` returns the page only once the named log's
//! replay has reached the requested LSN — "if the requested data has a
//! stale LSN, the storage node waits for log replay before replying" (§5).
//! In this synchronous implementation the caller observes
//! [`StorageError::ReplayLag`] and retries (the simulator converts the lag
//! into a virtual-time wait).

use crate::wire::{PageUpdate, PageWrite};
use bytes::Bytes;
use marlin_common::{LogId, Lsn, PageId, StorageError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A materialized page: a base image plus an applied-delta chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Page {
    /// Latest full image.
    pub base: Bytes,
    /// Deltas applied after `base`, in order.
    pub deltas: Vec<Bytes>,
}

impl Page {
    /// Total materialized size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len() + self.deltas.iter().map(Bytes::len).sum::<usize>()
    }

    /// Whether the page holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Default)]
struct PageStoreInner {
    pages: HashMap<PageId, Page>,
    /// Highest LSN fully replayed, per log.
    watermarks: HashMap<LogId, Lsn>,
    /// Served page reads (stats).
    reads: u64,
}

/// The shared, versioned page store fed by log replay.
///
/// Cheaply clonable; clones share state.
#[derive(Clone, Debug, Default)]
pub struct PageStore {
    inner: Arc<RwLock<PageStoreInner>>,
}

impl PageStore {
    /// Create an empty store with nothing replayed.
    #[must_use]
    pub fn new() -> Self {
        PageStore::default()
    }

    /// Apply one record's page updates from `log` at `lsn`. Called only by
    /// the replay service, strictly in per-log LSN order.
    pub fn apply(&self, log: LogId, lsn: Lsn, updates: &[PageUpdate]) {
        let mut inner = self.inner.write();
        let mark = inner.watermarks.entry(log).or_insert(Lsn::ZERO);
        assert!(
            lsn > *mark,
            "replay must apply records in order (applying {lsn:?} after {mark:?} on {log})"
        );
        *mark = lsn;
        for u in updates {
            let page = inner.pages.entry(u.page).or_default();
            match &u.write {
                PageWrite::Full(image) => {
                    page.base = image.clone();
                    page.deltas.clear();
                }
                PageWrite::Delta(delta) => {
                    page.deltas.push(delta.clone());
                }
            }
        }
    }

    /// `GetPage@LSN`: fetch `page` with all updates of `log` up to `lsn`
    /// applied.
    ///
    /// Returns `ReplayLag` if the log's replay has not reached `lsn`, and
    /// `NoSuchPage` for pages that have never been written (callers treat
    /// that as an empty page or an error depending on context).
    pub fn get_page(&self, page: PageId, log: LogId, lsn: Lsn) -> Result<Page, StorageError> {
        let mut inner = self.inner.write();
        let applied = inner.watermarks.get(&log).copied().unwrap_or(Lsn::ZERO);
        if applied < lsn {
            return Err(StorageError::ReplayLag {
                applied,
                requested: lsn,
            });
        }
        inner.reads += 1;
        inner
            .pages
            .get(&page)
            .cloned()
            .ok_or(StorageError::NoSuchPage)
    }

    /// Highest LSN fully replayed for `log`.
    #[must_use]
    pub fn replayed_lsn(&self, log: LogId) -> Lsn {
        self.inner
            .read()
            .watermarks
            .get(&log)
            .copied()
            .unwrap_or(Lsn::ZERO)
    }

    /// Number of page reads served.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.inner.read().reads
    }

    /// Number of distinct pages materialized.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.inner.read().pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::{GranuleId, NodeId, TableId};

    const LOG: LogId = LogId::GLog(NodeId(0));

    fn pid(i: u32) -> PageId {
        PageId {
            table: TableId(0),
            granule: GranuleId(0),
            index: i,
        }
    }

    fn full(p: PageId, s: &'static str) -> PageUpdate {
        PageUpdate {
            page: p,
            write: PageWrite::Full(Bytes::from_static(s.as_bytes())),
        }
    }

    fn delta(p: PageId, s: &'static str) -> PageUpdate {
        PageUpdate {
            page: p,
            write: PageWrite::Delta(Bytes::from_static(s.as_bytes())),
        }
    }

    #[test]
    fn get_page_at_lsn_requires_replay() {
        let store = PageStore::new();
        let err = store.get_page(pid(0), LOG, Lsn(1)).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ReplayLag {
                applied: Lsn(0),
                requested: Lsn(1)
            }
        ));
        store.apply(LOG, Lsn(1), &[full(pid(0), "v1")]);
        let page = store.get_page(pid(0), LOG, Lsn(1)).unwrap();
        assert_eq!(page.base, Bytes::from_static(b"v1"));
    }

    #[test]
    fn deltas_chain_until_next_full_image() {
        let store = PageStore::new();
        store.apply(LOG, Lsn(1), &[full(pid(1), "base")]);
        store.apply(LOG, Lsn(2), &[delta(pid(1), "+d1")]);
        store.apply(LOG, Lsn(3), &[delta(pid(1), "+d2")]);
        let page = store.get_page(pid(1), LOG, Lsn(3)).unwrap();
        assert_eq!(page.deltas.len(), 2);
        assert_eq!(page.len(), 4 + 3 + 3);
        store.apply(LOG, Lsn(4), &[full(pid(1), "compacted")]);
        let page = store.get_page(pid(1), LOG, Lsn(4)).unwrap();
        assert!(page.deltas.is_empty());
        assert_eq!(page.base, Bytes::from_static(b"compacted"));
    }

    #[test]
    fn missing_page_is_distinguished_from_lag() {
        let store = PageStore::new();
        store.apply(LOG, Lsn(1), &[full(pid(0), "x")]);
        assert!(matches!(
            store.get_page(pid(9), LOG, Lsn(1)),
            Err(StorageError::NoSuchPage)
        ));
    }

    #[test]
    fn older_lsn_reads_are_served_from_newer_state() {
        // GetPage@LSN asks for "at least LSN"; a store replayed further is fine.
        let store = PageStore::new();
        store.apply(LOG, Lsn(1), &[full(pid(0), "a")]);
        store.apply(LOG, Lsn(2), &[full(pid(0), "b")]);
        let page = store.get_page(pid(0), LOG, Lsn(1)).unwrap();
        assert_eq!(page.base, Bytes::from_static(b"b"));
    }

    #[test]
    fn logs_have_independent_watermarks_but_shared_pages() {
        // The migration story: granule pages written through the old
        // owner's log remain visible to the new owner reading with its own
        // log coordinates.
        let store = PageStore::new();
        let old_log = LogId::GLog(NodeId(1));
        let new_log = LogId::GLog(NodeId(2));
        store.apply(old_log, Lsn(1), &[full(pid(0), "from-old-owner")]);
        store.apply(new_log, Lsn(1), &[delta(pid(0), "+new-owner")]);
        assert_eq!(store.replayed_lsn(old_log), Lsn(1));
        assert_eq!(store.replayed_lsn(new_log), Lsn(1));
        let page = store.get_page(pid(0), new_log, Lsn(1)).unwrap();
        assert_eq!(page.base, Bytes::from_static(b"from-old-owner"));
        assert_eq!(page.deltas.len(), 1);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_replay_panics() {
        let store = PageStore::new();
        store.apply(LOG, Lsn(2), &[full(pid(0), "x")]);
        store.apply(LOG, Lsn(1), &[full(pid(0), "y")]);
    }

    #[test]
    fn replay_may_skip_lsns_of_non_page_records() {
        // Coordination records don't produce page updates; the replay
        // service still advances the watermark with an empty update list.
        let store = PageStore::new();
        store.apply(LOG, Lsn(1), &[]);
        store.apply(LOG, Lsn(5), &[full(pid(0), "z")]);
        assert_eq!(store.replayed_lsn(LOG), Lsn(5));
        assert!(store.get_page(pid(0), LOG, Lsn(5)).is_ok());
    }
}
