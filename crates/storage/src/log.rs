//! Shared write-ahead logs with conditional append (`Append@LSN`).
//!
//! A [`SharedLog`] is the ground truth of the database (log-as-the-database,
//! §3.1). The coordination-critical primitive is
//! [`SharedLog::conditional_append`]: an atomic compare-and-swap on the log
//! tail. MarlinCommit's `TryLog` is built entirely on this operation
//! (Algorithm 2), so its semantics here are written to match the paper and
//! the Azure/S3/GCS contracts described in §5:
//!
//! - If the log's current LSN equals the caller's expected LSN, all records
//!   are appended **atomically** (one log operation — this is what makes
//!   group commit a single CAS) and the new LSN is returned.
//! - Otherwise nothing is appended and the *current* LSN is returned so the
//!   caller can refresh its tracker.

use bytes::Bytes;
use marlin_common::{Lsn, StorageError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Entity tag, mirroring the HTTP `ETag`/`If-Match` mechanism cloud stores
/// expose for optimistic concurrency (§5). In this implementation the tag
/// deterministically encodes the log generation and length; equality of
/// tags is equivalent to equality of LSNs for a given log.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ETag(pub u64);

/// One record in a shared log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// LSN of this record: the log's version *after* the record. The first
    /// record of a log has `Lsn(1)`.
    pub lsn: Lsn,
    /// Opaque payload (the storage layer does not interpret it; the replay
    /// service decodes page updates from it via [`crate::wire`]).
    pub payload: Bytes,
}

/// Result of a successful append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The log's LSN after the append.
    pub new_lsn: Lsn,
    /// The new entity tag.
    pub etag: ETag,
}

#[derive(Debug, Default)]
struct LogInner {
    records: Vec<LogRecord>,
    /// Bytes appended over the log's lifetime (stats/bandwidth accounting).
    bytes: u64,
    /// Failed CAS attempts observed (contention signal, Figure 15).
    cas_failures: u64,
    /// Conditional appends attempted (successes + failures) — the
    /// coordination-op count `Append@LSN` accounting reads.
    cas_attempts: u64,
}

/// A shared, append-only log in disaggregated storage.
///
/// Cheaply clonable (`Arc` inside); all clones view the same log. Thread
/// safe: the internal mutex models the atomicity the storage service
/// guarantees for a single conditional-append operation.
#[derive(Clone, Debug, Default)]
pub struct SharedLog {
    inner: Arc<Mutex<LogInner>>,
}

impl SharedLog {
    /// Create an empty log at [`Lsn::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        SharedLog::default()
    }

    /// Current LSN (number of records appended).
    #[must_use]
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().records.len() as u64)
    }

    /// Current entity tag.
    #[must_use]
    pub fn etag(&self) -> ETag {
        ETag(self.end_lsn().0)
    }

    /// Unconditional `Append(updates)`: always succeeds, appending each
    /// payload as one record, atomically.
    pub fn append(&self, payloads: Vec<Bytes>) -> AppendOutcome {
        let mut inner = self.inner.lock();
        Self::push_all(&mut inner, payloads)
    }

    /// Conditional `Append(updates, LSN)` — the paper's `Append@LSN`.
    ///
    /// Appends all payloads atomically iff the log's current LSN equals
    /// `expected`. On mismatch, returns [`StorageError::LsnMismatch`]
    /// carrying the log's current LSN (the paper's API returns the newest
    /// LSN to let the caller retry with an updated target).
    pub fn conditional_append(
        &self,
        payloads: Vec<Bytes>,
        expected: Lsn,
    ) -> Result<AppendOutcome, StorageError> {
        let mut inner = self.inner.lock();
        inner.cas_attempts += 1;
        let current = Lsn(inner.records.len() as u64);
        if current != expected {
            inner.cas_failures += 1;
            return Err(StorageError::LsnMismatch {
                log: marlin_common::LogId::SysLog, // overwritten by the service wrapper
                expected,
                current,
            });
        }
        Ok(Self::push_all(&mut inner, payloads))
    }

    fn push_all(inner: &mut LogInner, payloads: Vec<Bytes>) -> AppendOutcome {
        for payload in payloads {
            let lsn = Lsn(inner.records.len() as u64 + 1);
            inner.bytes += payload.len() as u64;
            inner.records.push(LogRecord { lsn, payload });
        }
        let new_lsn = Lsn(inner.records.len() as u64);
        AppendOutcome {
            new_lsn,
            etag: ETag(new_lsn.0),
        }
    }

    /// Read all records with LSN strictly greater than `after`, i.e. the
    /// suffix the caller has not yet observed.
    #[must_use]
    pub fn read_after(&self, after: Lsn) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        let start = (after.0 as usize).min(inner.records.len());
        inner.records[start..].to_vec()
    }

    /// Read a single record by LSN (1-based).
    #[must_use]
    pub fn read_at(&self, lsn: Lsn) -> Option<LogRecord> {
        if lsn == Lsn::ZERO {
            return None;
        }
        let inner = self.inner.lock();
        inner.records.get(lsn.0 as usize - 1).cloned()
    }

    /// Total bytes appended over the log's lifetime.
    #[must_use]
    pub fn bytes_appended(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of failed conditional appends (cross-node contention signal).
    #[must_use]
    pub fn cas_failures(&self) -> u64 {
        self.inner.lock().cas_failures
    }

    /// Number of conditional appends attempted (successes + failures).
    #[must_use]
    pub fn cas_attempts(&self) -> u64 {
        self.inner.lock().cas_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn unconditional_append_advances_lsn() {
        let log = SharedLog::new();
        assert_eq!(log.end_lsn(), Lsn::ZERO);
        let out = log.append(vec![b("a"), b("b")]);
        assert_eq!(out.new_lsn, Lsn(2));
        assert_eq!(log.end_lsn(), Lsn(2));
        assert_eq!(log.etag(), ETag(2));
    }

    #[test]
    fn conditional_append_succeeds_at_expected_lsn() {
        let log = SharedLog::new();
        let out = log.conditional_append(vec![b("x")], Lsn::ZERO).unwrap();
        assert_eq!(out.new_lsn, Lsn(1));
        let out = log.conditional_append(vec![b("y")], Lsn(1)).unwrap();
        assert_eq!(out.new_lsn, Lsn(2));
    }

    #[test]
    fn conditional_append_fails_with_current_lsn() {
        let log = SharedLog::new();
        log.append(vec![b("1"), b("2"), b("3")]);
        let err = log
            .conditional_append(vec![b("stale")], Lsn(1))
            .unwrap_err();
        match err {
            StorageError::LsnMismatch {
                expected, current, ..
            } => {
                assert_eq!(expected, Lsn(1));
                assert_eq!(current, Lsn(3));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Nothing was appended.
        assert_eq!(log.end_lsn(), Lsn(3));
        assert_eq!(log.cas_failures(), 1);
    }

    #[test]
    fn batch_conditional_append_is_all_or_nothing() {
        let log = SharedLog::new();
        log.conditional_append(vec![b("a"), b("b"), b("c")], Lsn::ZERO)
            .unwrap();
        assert_eq!(log.end_lsn(), Lsn(3));
        assert!(log
            .conditional_append(vec![b("d"), b("e")], Lsn(2))
            .is_err());
        assert_eq!(log.end_lsn(), Lsn(3));
        let records = log.read_after(Lsn::ZERO);
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].payload, b("c"));
    }

    #[test]
    fn read_after_returns_unseen_suffix() {
        let log = SharedLog::new();
        log.append(vec![b("a"), b("b"), b("c")]);
        let suffix = log.read_after(Lsn(1));
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].lsn, Lsn(2));
        assert_eq!(suffix[1].lsn, Lsn(3));
        assert!(log.read_after(Lsn(3)).is_empty());
        assert!(log.read_after(Lsn(99)).is_empty());
    }

    #[test]
    fn read_at_is_one_based() {
        let log = SharedLog::new();
        log.append(vec![b("first")]);
        assert_eq!(log.read_at(Lsn(1)).unwrap().payload, b("first"));
        assert!(log.read_at(Lsn::ZERO).is_none());
        assert!(log.read_at(Lsn(2)).is_none());
    }

    #[test]
    fn clones_share_state() {
        let log = SharedLog::new();
        let view = log.clone();
        log.append(vec![b("shared")]);
        assert_eq!(view.end_lsn(), Lsn(1));
    }

    /// The linchpin of MarlinCommit: under concurrent conditional appends
    /// with the same expected LSN, exactly one writer wins per round.
    #[test]
    fn concurrent_cas_has_exactly_one_winner_per_lsn() {
        use std::thread;
        let log = SharedLog::new();
        let threads = 8;
        let rounds = 50;
        let wins: Vec<u64> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let log = log.clone();
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        let mut known = Lsn::ZERO;
                        while log.end_lsn().0 < rounds {
                            match log
                                .conditional_append(vec![Bytes::copy_from_slice(&[t as u8])], known)
                            {
                                Ok(out) => {
                                    wins += 1;
                                    known = out.new_lsn;
                                }
                                Err(StorageError::LsnMismatch { current, .. }) => {
                                    known = current;
                                    thread::yield_now();
                                }
                                Err(e) => panic!("unexpected {e:?}"),
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: u64 = wins.iter().sum();
        // Threads race past `rounds`; every appended record corresponds to
        // exactly one win and LSNs are dense (no lost or duplicate slots).
        assert_eq!(total, log.end_lsn().0);
        let records = log.read_after(Lsn::ZERO);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, Lsn(i as u64 + 1));
        }
    }
}
