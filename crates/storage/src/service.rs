//! The storage service façade: named log instances plus their page stores.
//!
//! One [`StorageService`] models the disaggregated storage account of the
//! testbed (§5): it hosts the global `SysLog`, one `GLog` per compute node,
//! and one data WAL per compute node, each paired with a page store and a
//! replay service. Logs for new nodes are provisioned on scale-out and kept
//! (highly available) across compute-node failures — that persistence is
//! exactly what lets `RecoveryMigrTxn` commit to a dead node's GLog.

use crate::log::{AppendOutcome, SharedLog};
use crate::page::PageStore;
use crate::replay::ReplayService;
use bytes::Bytes;
use marlin_common::{LogId, Lsn, NodeId, StorageError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-log statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Current end LSN.
    pub end_lsn: Lsn,
    /// Bytes appended over the log's lifetime.
    pub bytes_appended: u64,
    /// Failed conditional appends (cross-node contention).
    pub cas_failures: u64,
    /// Conditional appends attempted (successes + failures).
    pub cas_attempts: u64,
}

#[derive(Debug, Default)]
struct ServiceInner {
    logs: BTreeMap<LogId, ReplayService>,
    /// The shared page store all logs materialize into (pages are keyed by
    /// `PageId` alone; exclusive granule ownership keeps per-page update
    /// sequences serial across logs).
    store: PageStore,
}

/// The disaggregated storage service: a registry of logs plus the shared
/// page store.
///
/// Cheaply clonable; clones share state.
#[derive(Clone, Debug, Default)]
pub struct StorageService {
    inner: Arc<RwLock<ServiceInner>>,
}

impl StorageService {
    /// Create an empty service with only the SysLog provisioned.
    #[must_use]
    pub fn new() -> Self {
        let svc = StorageService::default();
        svc.create_log(LogId::SysLog);
        svc
    }

    /// Provision a log instance (idempotent).
    pub fn create_log(&self, id: LogId) {
        let mut inner = self.inner.write();
        let store = inner.store.clone();
        inner
            .logs
            .entry(id)
            .or_insert_with(|| ReplayService::new(id, SharedLog::new(), store));
    }

    /// Provision the per-node logs (GLog + data WAL) for a new compute node.
    pub fn provision_node(&self, node: NodeId) {
        self.create_log(LogId::GLog(node));
        self.create_log(LogId::DataWal(node));
    }

    /// Whether a log exists.
    #[must_use]
    pub fn has_log(&self, id: LogId) -> bool {
        self.inner.read().logs.contains_key(&id)
    }

    /// All provisioned log IDs.
    #[must_use]
    pub fn log_ids(&self) -> Vec<LogId> {
        self.inner.read().logs.keys().copied().collect()
    }

    fn replay_service(&self, id: LogId) -> Result<ReplayService, StorageError> {
        self.inner
            .read()
            .logs
            .get(&id)
            .cloned()
            .ok_or(StorageError::NoSuchLog(id))
    }

    /// Handle to a log (for reads and replay driving).
    pub fn log(&self, id: LogId) -> Result<SharedLog, StorageError> {
        Ok(self.replay_service(id)?.log().clone())
    }

    /// Handle to the shared page store.
    #[must_use]
    pub fn page_store(&self) -> PageStore {
        self.inner.read().store.clone()
    }

    /// Handle to a log's replay service.
    pub fn replay(&self, id: LogId) -> Result<ReplayService, StorageError> {
        self.replay_service(id)
    }

    /// Unconditional `Append(updates)`.
    pub fn append(&self, id: LogId, payloads: Vec<Bytes>) -> Result<AppendOutcome, StorageError> {
        Ok(self.replay_service(id)?.log().append(payloads))
    }

    /// Conditional `Append(updates, LSN)` — `Append@LSN` (§4.3.1).
    ///
    /// On mismatch the error carries the correct [`LogId`] and the log's
    /// current LSN.
    pub fn conditional_append(
        &self,
        id: LogId,
        payloads: Vec<Bytes>,
        expected: Lsn,
    ) -> Result<AppendOutcome, StorageError> {
        let svc = self.replay_service(id)?;
        svc.log()
            .conditional_append(payloads, expected)
            .map_err(|e| match e {
                StorageError::LsnMismatch {
                    expected, current, ..
                } => StorageError::LsnMismatch {
                    log: id,
                    expected,
                    current,
                },
                other => other,
            })
    }

    /// Current end LSN of a log.
    pub fn end_lsn(&self, id: LogId) -> Result<Lsn, StorageError> {
        Ok(self.replay_service(id)?.log().end_lsn())
    }

    /// Statistics snapshot for one log.
    pub fn stats(&self, id: LogId) -> Result<LogStats, StorageError> {
        let svc = self.replay_service(id)?;
        let log = svc.log();
        Ok(LogStats {
            end_lsn: log.end_lsn(),
            bytes_appended: log.bytes_appended(),
            cas_failures: log.cas_failures(),
            cas_attempts: log.cas_attempts(),
        })
    }

    /// Sum of CAS failures across all logs (contention signal, Figure 15).
    #[must_use]
    pub fn total_cas_failures(&self) -> u64 {
        let inner = self.inner.read();
        inner.logs.values().map(|s| s.log().cas_failures()).sum()
    }

    /// Drive replay to the tail on every log (used by tests and the
    /// synchronous runner; the simulator steps replay with virtual delay).
    pub fn replay_all(&self) {
        let services: Vec<ReplayService> = self.inner.read().logs.values().cloned().collect();
        for svc in services {
            svc.replay_until(Lsn(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn new_service_has_syslog_only() {
        let svc = StorageService::new();
        assert!(svc.has_log(LogId::SysLog));
        assert_eq!(svc.log_ids(), vec![LogId::SysLog]);
    }

    #[test]
    fn provision_node_creates_glog_and_wal() {
        let svc = StorageService::new();
        svc.provision_node(NodeId(3));
        assert!(svc.has_log(LogId::GLog(NodeId(3))));
        assert!(svc.has_log(LogId::DataWal(NodeId(3))));
        // Idempotent: re-provisioning keeps existing content.
        svc.append(LogId::GLog(NodeId(3)), vec![b("x")]).unwrap();
        svc.provision_node(NodeId(3));
        assert_eq!(svc.end_lsn(LogId::GLog(NodeId(3))).unwrap(), Lsn(1));
    }

    #[test]
    fn missing_log_errors() {
        let svc = StorageService::new();
        let id = LogId::GLog(NodeId(9));
        assert_eq!(
            svc.append(id, vec![b("x")]).unwrap_err(),
            StorageError::NoSuchLog(id)
        );
        assert_eq!(svc.end_lsn(id).unwrap_err(), StorageError::NoSuchLog(id));
    }

    #[test]
    fn conditional_append_error_names_the_log() {
        let svc = StorageService::new();
        svc.provision_node(NodeId(1));
        let id = LogId::GLog(NodeId(1));
        svc.append(id, vec![b("r1")]).unwrap();
        let err = svc
            .conditional_append(id, vec![b("r2")], Lsn::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::LsnMismatch {
                log: id,
                expected: Lsn::ZERO,
                current: Lsn(1)
            }
        );
    }

    #[test]
    fn stats_track_appends_and_failures() {
        let svc = StorageService::new();
        svc.append(LogId::SysLog, vec![b("abcd")]).unwrap();
        let _ = svc.conditional_append(LogId::SysLog, vec![b("x")], Lsn::ZERO);
        let stats = svc.stats(LogId::SysLog).unwrap();
        assert_eq!(stats.end_lsn, Lsn(1));
        assert_eq!(stats.bytes_appended, 4);
        assert_eq!(stats.cas_failures, 1);
        assert_eq!(svc.total_cas_failures(), 1);
    }

    #[test]
    fn replay_all_catches_up_every_log() {
        let svc = StorageService::new();
        svc.provision_node(NodeId(0));
        svc.append(LogId::SysLog, vec![b("m1")]).unwrap();
        svc.append(LogId::DataWal(NodeId(0)), vec![b("d1"), b("d2")])
            .unwrap();
        svc.replay_all();
        let store = svc.page_store();
        assert_eq!(store.replayed_lsn(LogId::SysLog), Lsn(1));
        assert_eq!(store.replayed_lsn(LogId::DataWal(NodeId(0))), Lsn(2));
    }
}
