//! Disaggregated storage substrate (paper §3.1, §5).
//!
//! The paper's testbed stores write-ahead logs in Azure Append Blobs and
//! pages in Azure Table Storage. This crate reproduces the two storage APIs
//! the system depends on, with the same semantics the paper requires and no
//! cloud dependency:
//!
//! - **`Append(updates)`** and **`Append(updates, LSN)`** — unconditional
//!   and conditional (compare-and-swap) log appends. The conditional form
//!   (`Append@LSN`) succeeds only if the log tail is exactly at the expected
//!   LSN, returning the current LSN on failure so the caller can refresh and
//!   retry. Azure implements this with `If-Match` ETags or
//!   `x-ms-blob-condition-appendpos-equal`; here the atomicity that the
//!   cloud service guarantees internally is provided by a mutex around the
//!   log tail. An [`log::ETag`] shadow is maintained to mirror the
//!   ETag-based port described in §5.
//! - **`GetPage(pageId, LSN)`** (`GetPage@LSN`) — fetch a page that has
//!   applied all updates up to the given LSN; if the replay service lags,
//!   the request reports [`marlin_common::StorageError::ReplayLag`] (the
//!   paper's storage node waits for replay; the simulator turns this into a
//!   wait, synchronous callers can poll or drive replay directly).
//!
//! A [`replay::ReplayService`] materializes log records into the page store
//! asynchronously, following the log-as-the-database paradigm: compute
//! nodes never write back pages.

pub mod log;
pub mod page;
pub mod replay;
pub mod service;
pub mod wire;

pub use log::{AppendOutcome, ETag, LogRecord, SharedLog};
pub use page::{Page, PageStore};
pub use replay::ReplayService;
pub use service::{LogStats, StorageService};
pub use wire::{decode_page_updates, encode_page_updates, PageUpdate, PageWrite};
