//! Wire format for page updates carried in log payloads.
//!
//! The storage layer does not interpret transaction semantics, but its
//! replay service must be able to materialize log records into pages
//! (§3.1). The contract between compute and storage is therefore a list of
//! [`PageUpdate`]s per log record, length-prefix framed. Encoding is
//! deliberately simple (no external serializer): `u32` little-endian
//! lengths and raw bytes.
//!
//! Layout of an encoded record payload:
//!
//! ```text
//! u32 update_count
//! repeat update_count times:
//!   u32 table | u64 granule | u32 page_index | u8 kind | u32 len | bytes
//! ```
//!
//! `kind` is 0 for a full page image (replace), 1 for a delta (append to
//! the page's delta chain).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use marlin_common::{GranuleId, PageId, TableId};

/// How a page update is applied by replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageWrite {
    /// Replace the page's content with this image.
    Full(Bytes),
    /// Append this delta to the page (the page store keeps a base image
    /// plus a delta chain, mirroring log-structured page materialization).
    Delta(Bytes),
}

impl PageWrite {
    /// Size in bytes of the carried image or delta.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            PageWrite::Full(b) | PageWrite::Delta(b) => b.len(),
        }
    }

    /// Whether the write carries no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One page update inside a log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageUpdate {
    /// The page being updated.
    pub page: PageId,
    /// The content change.
    pub write: PageWrite,
}

/// Encode a list of page updates into a log payload.
#[must_use]
pub fn encode_page_updates(updates: &[PageUpdate]) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(16 + updates.iter().map(|u| 24 + u.write.len()).sum::<usize>());
    buf.put_u32_le(updates.len() as u32);
    for u in updates {
        buf.put_u32_le(u.page.table.0);
        buf.put_u64_le(u.page.granule.0);
        buf.put_u32_le(u.page.index);
        let (kind, bytes) = match &u.write {
            PageWrite::Full(b) => (0u8, b),
            PageWrite::Delta(b) => (1u8, b),
        };
        buf.put_u8(kind);
        buf.put_u32_le(bytes.len() as u32);
        buf.put_slice(bytes);
    }
    buf.freeze()
}

/// Decode a log payload into page updates. Returns `None` if the payload is
/// not in the page-update format (e.g. a system-table record, which replay
/// handles separately).
#[must_use]
pub fn decode_page_updates(payload: &Bytes) -> Option<Vec<PageUpdate>> {
    let mut buf = payload.clone();
    if buf.remaining() < 4 {
        return None;
    }
    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 + 8 + 4 + 1 + 4 {
            return None;
        }
        let table = TableId(buf.get_u32_le());
        let granule = GranuleId(buf.get_u64_le());
        let index = buf.get_u32_le();
        let kind = buf.get_u8();
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        let bytes = buf.copy_to_bytes(len);
        let write = match kind {
            0 => PageWrite::Full(bytes),
            1 => PageWrite::Delta(bytes),
            _ => return None,
        };
        out.push(PageUpdate {
            page: PageId {
                table,
                granule,
                index,
            },
            write,
        });
    }
    if buf.has_remaining() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn page(t: u32, g: u64, i: u32) -> PageId {
        PageId {
            table: TableId(t),
            granule: GranuleId(g),
            index: i,
        }
    }

    #[test]
    fn round_trip_mixed_updates() {
        let updates = vec![
            PageUpdate {
                page: page(1, 2, 3),
                write: PageWrite::Full(Bytes::from_static(b"full")),
            },
            PageUpdate {
                page: page(0, 9, 0),
                write: PageWrite::Delta(Bytes::from_static(b"d")),
            },
            PageUpdate {
                page: page(7, 0, 1),
                write: PageWrite::Full(Bytes::new()),
            },
        ];
        let encoded = encode_page_updates(&updates);
        let decoded = decode_page_updates(&encoded).unwrap();
        assert_eq!(decoded, updates);
    }

    #[test]
    fn empty_update_list_round_trips() {
        let encoded = encode_page_updates(&[]);
        assert_eq!(decode_page_updates(&encoded).unwrap(), vec![]);
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert_eq!(decode_page_updates(&Bytes::from_static(b"zz")), None);
        // Claimed count larger than content.
        let mut bad = BytesMut::new();
        bad.put_u32_le(5);
        bad.put_u8(1);
        assert_eq!(decode_page_updates(&bad.freeze()), None);
        // Trailing junk after valid updates.
        let mut tail = BytesMut::from(encode_page_updates(&[]).as_ref());
        tail.put_u8(0xFF);
        assert_eq!(decode_page_updates(&tail.freeze()), None);
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u8(9); // bad kind
        buf.put_u32_le(0);
        assert_eq!(decode_page_updates(&buf.freeze()), None);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            entries in proptest::collection::vec(
                (0u32..100, 0u64..10_000, 0u32..64, proptest::collection::vec(any::<u8>(), 0..128), any::<bool>()),
                0..20,
            )
        ) {
            let updates: Vec<PageUpdate> = entries
                .into_iter()
                .map(|(t, g, i, data, full)| PageUpdate {
                    page: page(t, g, i),
                    write: if full {
                        PageWrite::Full(Bytes::from(data))
                    } else {
                        PageWrite::Delta(Bytes::from(data))
                    },
                })
                .collect();
            let decoded = decode_page_updates(&encode_page_updates(&updates));
            prop_assert_eq!(decoded, Some(updates));
        }
    }
}
