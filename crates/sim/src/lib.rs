//! Deterministic discrete-event simulation (DES) kernel.
//!
//! The paper's evaluation runs on Azure VMs with real data-center and
//! cross-region networks. This crate substitutes that infrastructure with a
//! deterministic simulator: a virtual clock, a priority event queue, seeded
//! randomness, latency models (including a cross-region RTT matrix), and
//! queueing-theoretic service stations used to model bounded-capacity
//! components such as the ZooKeeper leader. Protocol *logic* stays real —
//! only time is virtual — so the comparative shapes of the paper's figures
//! are preserved while runs stay reproducible and laptop-sized.

pub mod latency;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod server;
pub mod sketch;
pub mod time;

pub use latency::{LatencyModel, RegionMatrix};
pub use metrics::{Histogram, RateSeries, Summary, TimeSeries};
pub use queue::{ActorId, EventQueue, ScheduledEvent};
pub use rng::DetRng;
pub use server::QueueServer;
pub use sketch::{CountMinSketch, HeatTracker};
pub use time::{Nanos, MICROSECOND, MILLISECOND, SECOND};
