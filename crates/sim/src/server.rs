//! Queueing service stations: bounded-capacity components.
//!
//! External coordination services are not infinitely fast — the paper's
//! whole point is that a ZooKeeper leader (one node, one disk, one NIC)
//! saturates under reconfiguration storms while Marlin's partitioned design
//! scales with the cluster. A [`QueueServer`] models such a component as a
//! FIFO station with `c` parallel servers and a per-request service time:
//! requests arriving while all servers are busy queue up, and the caller
//! gets back the virtual completion time.

use crate::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A `c`-server FIFO queueing station with deterministic bookkeeping.
///
/// The station does not store requests; callers ask "if a request arrives
/// at time `t` and needs `s` service time, when does it complete?" and the
/// station updates its internal busy horizon. This is exact for FIFO
/// service disciplines and is how the simulator prices requests through
/// the ZooKeeper leader, its followers, and FoundationDB's pipeline stages.
#[derive(Clone, Debug)]
pub struct QueueServer {
    /// Completion horizon of each parallel server (min-heap).
    busy_until: BinaryHeap<Reverse<Nanos>>,
    servers: usize,
    /// Total busy time accumulated across servers (for utilization stats).
    busy_time: Nanos,
    /// Number of requests served.
    served: u64,
    /// Total queueing delay (waiting before service) accumulated.
    total_wait: Nanos,
}

impl QueueServer {
    /// Create a station with `servers` parallel servers.
    #[must_use]
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a service station needs at least one server");
        let mut busy_until = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            busy_until.push(Reverse(0));
        }
        QueueServer {
            busy_until,
            servers,
            busy_time: 0,
            served: 0,
            total_wait: 0,
        }
    }

    /// Offer a request arriving at `arrival` needing `service` time.
    /// Returns the completion time.
    pub fn offer(&mut self, arrival: Nanos, service: Nanos) -> Nanos {
        let Reverse(free_at) = self.busy_until.pop().expect("heap sized to server count");
        let start = arrival.max(free_at);
        let done = start + service;
        self.busy_until.push(Reverse(done));
        self.busy_time += service;
        self.total_wait += start - arrival;
        self.served += 1;
        done
    }

    /// Earliest time at which any server becomes free.
    #[must_use]
    pub fn next_free(&self) -> Nanos {
        self.busy_until.peek().map_or(0, |Reverse(t)| *t)
    }

    /// Number of parallel servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Requests served so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay experienced by requests so far.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.served as f64
        }
    }

    /// Utilization over the window `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_time as f64 / (horizon as f64 * self.servers as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = QueueServer::new(1);
        assert_eq!(s.offer(100, 50), 150);
    }

    #[test]
    fn busy_single_server_queues_fifo() {
        let mut s = QueueServer::new(1);
        assert_eq!(s.offer(0, 100), 100);
        assert_eq!(s.offer(10, 100), 200); // waits until 100
        assert_eq!(s.offer(20, 100), 300); // waits until 200
        assert!((s.mean_wait() - (0.0 + 90.0 + 180.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_servers_absorb_bursts() {
        let mut s = QueueServer::new(2);
        assert_eq!(s.offer(0, 100), 100);
        assert_eq!(s.offer(0, 100), 100); // second server
        assert_eq!(s.offer(0, 100), 200); // queues behind the earliest
    }

    #[test]
    fn late_arrival_resets_start() {
        let mut s = QueueServer::new(1);
        s.offer(0, 10);
        assert_eq!(s.offer(1_000, 10), 1_010);
        assert_eq!(s.mean_wait(), 0.0);
    }

    #[test]
    fn utilization_accounts_all_servers() {
        let mut s = QueueServer::new(2);
        s.offer(0, 100);
        s.offer(0, 100);
        assert!((s.utilization(100) - 1.0).abs() < 1e-9);
        assert!((s.utilization(200) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_capped_by_service_rate() {
        // 1 server, 1ms service => at most 1000 completions per virtual second.
        let mut s = QueueServer::new(1);
        let mut done_within_1s = 0;
        for i in 0..5_000 {
            // Offered load: one request every 0.1 ms (10x capacity).
            let completion = s.offer(i * 100_000, 1_000_000);
            if completion <= 1_000_000_000 {
                done_within_1s += 1;
            }
        }
        assert_eq!(done_within_1s, 1_000);
    }
}
