//! Network and storage latency models.
//!
//! The evaluation (§6.1) runs compute nodes in one Azure region (single-
//! region scenarios) or across four regions (§6.5). Latencies here are
//! modeled as a base value plus bounded uniform jitter; cross-region
//! round-trip times come from a [`RegionMatrix`] seeded with public
//! inter-region measurements for the regions the paper uses (US West,
//! East Asia, UK South, Australia East).

use crate::rng::DetRng;
use crate::time::{Nanos, MILLISECOND};
use marlin_common::RegionId;

/// A latency distribution: `base + U[0, jitter]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Minimum latency.
    pub base: Nanos,
    /// Width of the uniform jitter band added on top of `base`.
    pub jitter: Nanos,
}

impl LatencyModel {
    /// A constant (jitter-free) latency.
    #[must_use]
    pub fn constant(base: Nanos) -> Self {
        LatencyModel { base, jitter: 0 }
    }

    /// A latency with proportional jitter (`frac` of the base).
    #[must_use]
    pub fn with_jitter(base: Nanos, frac: f64) -> Self {
        LatencyModel {
            base,
            jitter: (base as f64 * frac) as Nanos,
        }
    }

    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> Nanos {
        if self.jitter == 0 {
            self.base
        } else {
            self.base + rng.range(0, self.jitter + 1)
        }
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> Nanos {
        self.base + self.jitter / 2
    }
}

/// One-way latencies between deployment regions.
///
/// Stored as a dense symmetric matrix of one-way times; `rtt` is twice the
/// one-way value. Intra-region latency sits on the diagonal.
#[derive(Clone, Debug)]
pub struct RegionMatrix {
    regions: usize,
    one_way: Vec<Nanos>,
}

impl RegionMatrix {
    /// A single-region matrix with the given intra-region one-way latency.
    #[must_use]
    pub fn single(intra_one_way: Nanos) -> Self {
        RegionMatrix {
            regions: 1,
            one_way: vec![intra_one_way],
        }
    }

    /// Build from a symmetric `n x n` table of one-way latencies.
    #[must_use]
    pub fn from_table(table: &[&[Nanos]]) -> Self {
        let n = table.len();
        let mut one_way = Vec::with_capacity(n * n);
        for (i, row) in table.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, table[j][i], "matrix must be symmetric ({i},{j})");
                one_way.push(v);
            }
        }
        RegionMatrix {
            regions: n,
            one_way,
        }
    }

    /// The four-region deployment of §6.5: US West, East Asia, UK South,
    /// Australia East. One-way latencies approximate public Azure
    /// inter-region RTT measurements (half-RTT).
    #[must_use]
    pub fn paper_geo() -> Self {
        const MS: Nanos = MILLISECOND;
        // Order: 0 = US West, 1 = East Asia, 2 = UK South, 3 = Australia East.
        Self::from_table(&[
            &[MS / 4, 75 * MS, 65 * MS, 85 * MS],
            &[75 * MS, MS / 4, 100 * MS, 60 * MS],
            &[65 * MS, 100 * MS, MS / 4, 125 * MS],
            &[85 * MS, 60 * MS, 125 * MS, MS / 4],
        ])
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// One-way latency between two regions.
    #[must_use]
    pub fn one_way(&self, a: RegionId, b: RegionId) -> Nanos {
        let (a, b) = (a.0 as usize, b.0 as usize);
        assert!(a < self.regions && b < self.regions, "region out of range");
        self.one_way[a * self.regions + b]
    }

    /// Round-trip latency between two regions.
    #[must_use]
    pub fn rtt(&self, a: RegionId, b: RegionId) -> Nanos {
        2 * self.one_way(a, b)
    }

    /// A [`LatencyModel`] for one-way messages between two regions, with
    /// 10% jitter (network variance).
    #[must_use]
    pub fn link(&self, a: RegionId, b: RegionId) -> LatencyModel {
        LatencyModel::with_jitter(self.one_way(a, b), 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_has_no_jitter() {
        let m = LatencyModel::constant(500);
        let mut rng = DetRng::seed(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 500);
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = LatencyModel::with_jitter(1_000, 0.2);
        let mut rng = DetRng::seed(2);
        for _ in 0..1_000 {
            let v = m.sample(&mut rng);
            assert!((1_000..=1_200).contains(&v), "sample {v}");
        }
    }

    #[test]
    fn geo_matrix_is_symmetric_with_fast_diagonal() {
        let m = RegionMatrix::paper_geo();
        assert_eq!(m.regions(), 4);
        for i in 0..4u16 {
            for j in 0..4u16 {
                assert_eq!(
                    m.one_way(RegionId(i), RegionId(j)),
                    m.one_way(RegionId(j), RegionId(i))
                );
                if i != j {
                    assert!(
                        m.one_way(RegionId(i), RegionId(j)) > m.one_way(RegionId(i), RegionId(i))
                    );
                }
            }
        }
    }

    #[test]
    fn rtt_is_twice_one_way() {
        let m = RegionMatrix::single(250_000);
        assert_eq!(m.rtt(RegionId(0), RegionId(0)), 500_000);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_table_rejected() {
        let _ = RegionMatrix::from_table(&[&[0, 1], &[2, 0]]);
    }
}
