//! Virtual time. All simulation timestamps and durations are nanoseconds
//! since the start of the run, carried as a plain `u64`.

/// A point in virtual time or a duration, in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Convert nanoseconds to fractional seconds (for reporting).
#[must_use]
pub fn as_secs_f64(t: Nanos) -> f64 {
    t as f64 / SECOND as f64
}

/// Convert fractional seconds to nanoseconds (for configuration).
#[must_use]
pub fn from_secs_f64(s: f64) -> Nanos {
    (s * SECOND as f64).round() as Nanos
}

/// Convert microseconds to [`Nanos`].
#[must_use]
pub fn from_micros(us: u64) -> Nanos {
    us * MICROSECOND
}

/// Convert milliseconds to [`Nanos`].
#[must_use]
pub fn from_millis(ms: u64) -> Nanos {
    ms * MILLISECOND
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(from_secs_f64(1.5), 1_500_000_000);
        assert!((as_secs_f64(2_500_000_000) - 2.5).abs() < 1e-12);
        assert_eq!(from_micros(3), 3_000);
        assert_eq!(from_millis(2), 2_000_000);
    }
}
