//! Measurement instruments for the evaluation harness.
//!
//! Three instruments cover everything the paper's figures need:
//! - [`RateSeries`]: events-per-second time series (throughput, abort rate
//!   panels in Figures 8, 9, 11, 14);
//! - [`TimeSeries`]: sampled gauge values over time (real-time cost,
//!   Figure 14b);
//! - [`Histogram`]: log-bucketed latency distribution with percentiles
//!   (Figure 10a, 14d).

use crate::time::{Nanos, SECOND};

/// Counts events into fixed-width time buckets, yielding a rate series.
#[derive(Clone, Debug)]
pub struct RateSeries {
    bucket_width: Nanos,
    counts: Vec<u64>,
}

impl RateSeries {
    /// Create a series with the given bucket width.
    #[must_use]
    pub fn new(bucket_width: Nanos) -> Self {
        assert!(bucket_width > 0);
        RateSeries {
            bucket_width,
            counts: Vec::new(),
        }
    }

    /// Record `n` events at time `t`.
    pub fn record_n(&mut self, t: Nanos, n: u64) {
        let idx = (t / self.bucket_width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Record one event at time `t`.
    pub fn record(&mut self, t: Nanos) {
        self.record_n(t, 1);
    }

    /// Total events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket width in nanoseconds.
    #[must_use]
    pub fn bucket_width(&self) -> Nanos {
        self.bucket_width
    }

    /// Iterate `(bucket_start_seconds, events_per_second)` pairs.
    pub fn per_second(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let w = self.bucket_width as f64 / SECOND as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * w, c as f64 / w))
    }

    /// Rate in the bucket containing time `t` (events per second).
    #[must_use]
    pub fn rate_at(&self, t: Nanos) -> f64 {
        let idx = (t / self.bucket_width) as usize;
        let c = self.counts.get(idx).copied().unwrap_or(0);
        c as f64 / (self.bucket_width as f64 / SECOND as f64)
    }

    /// The first time (bucket start) after `from` at which the bucket count
    /// is zero, i.e. when the measured activity stopped. Returns `None` if
    /// activity continues to the end of the recorded range.
    #[must_use]
    pub fn quiesced_after(&self, from: Nanos) -> Option<Nanos> {
        let start = (from / self.bucket_width) as usize;
        for (i, &c) in self.counts.iter().enumerate().skip(start) {
            if c == 0 {
                return Some(i as Nanos * self.bucket_width);
            }
        }
        None
    }
}

/// Sampled gauge: `(time, value)` points, e.g. cumulative dollars or node
/// counts over time.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(Nanos, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a sample. Samples must arrive in non-decreasing time order.
    pub fn push(&mut self, t: Nanos, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series samples must be time-ordered");
        }
        self.points.push((t, v));
    }

    /// All samples.
    #[must_use]
    pub fn points(&self) -> &[(Nanos, f64)] {
        &self.points
    }

    /// Last sampled value, if any.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at time `t` (step interpolation: value of the latest sample at
    /// or before `t`).
    #[must_use]
    pub fn at(&self, t: Nanos) -> Option<f64> {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }
}

/// Latency histogram with logarithmic buckets (~7% relative error).
///
/// Buckets are `[lo, lo*2^(1/10))` sub-decade steps — compact, constant
/// memory, and accurate enough for the percentile claims in the paper.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: Nanos,
    min: Nanos,
}

const BUCKETS: usize = 640; // covers [1 ns, ~2^64) with 10 buckets per octave

fn bucket_of(v: Nanos) -> usize {
    let v = v.max(1);
    // 10 buckets per power of two: index = floor(log2(v) * 10).
    let exp = 63 - v.leading_zeros() as usize;
    let frac_base = 1u64 << exp;
    let within = (u128::from(v - frac_base) * 10 / u128::from(frac_base)) as usize;
    (exp * 10 + within.min(9)).min(BUCKETS - 1)
}

fn bucket_lower(idx: usize) -> Nanos {
    let exp = idx / 10;
    let within = idx % 10;
    let base = 1u64 << exp.min(63);
    base + base / 10 * within as u64
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: Nanos::MAX,
        }
    }

    /// Record one latency observation.
    pub fn record(&mut self, v: Nanos) {
        self.record_n(v, 1);
    }

    /// Record `n` identical observations of `v` in one call.
    ///
    /// Arithmetic is exactly `n` repetitions of [`Histogram::record`] —
    /// the cohort client engine uses this to fold a whole batch of
    /// equal-latency commits into one update without changing any
    /// derived statistic.
    pub fn record_n(&mut self, v: Nanos, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.total += n;
        self.sum += u128::from(v) * u128::from(n);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (exact, not bucketed).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket lower bound).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_lower(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Exact maximum observation.
    #[must_use]
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// A compact summary (count/mean/p50/p99/max).
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean: self.mean(),
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Compact latency summary produced by [`Histogram::summary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    pub p50: Nanos,
    pub p99: Nanos,
    pub max: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_series_buckets_and_rates() {
        let mut r = RateSeries::new(SECOND);
        r.record(100);
        r.record(SECOND - 1);
        r.record(SECOND);
        r.record(3 * SECOND + 5);
        assert_eq!(r.total(), 4);
        let pts: Vec<_> = r.per_second().collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].1, 2.0);
        assert_eq!(pts[1].1, 1.0);
        assert_eq!(pts[2].1, 0.0);
        assert_eq!(pts[3].1, 1.0);
        assert_eq!(r.rate_at(500), 2.0);
    }

    #[test]
    fn quiesced_after_finds_first_empty_bucket() {
        let mut r = RateSeries::new(SECOND);
        for t in 0..5 {
            r.record(t * SECOND);
        }
        r.record(7 * SECOND); // gap at buckets 5 and 6
        assert_eq!(r.quiesced_after(0), Some(5 * SECOND));
        assert_eq!(r.quiesced_after(6 * SECOND), Some(6 * SECOND));
        assert_eq!(r.quiesced_after(7 * SECOND), None); // bucket 7 is last and non-empty
    }

    #[test]
    fn time_series_step_interpolation() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(20, 2.0);
        assert_eq!(s.at(5), None);
        assert_eq!(s.at(10), Some(1.0));
        assert_eq!(s.at(15), Some(1.0));
        assert_eq!(s.at(25), Some(2.0));
        assert_eq!(s.last(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn time_series_rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        // ~7% relative error tolerance for log buckets.
        assert!(
            (p50 as f64 - 5_000_000.0).abs() / 5_000_000.0 < 0.15,
            "p50 {p50}"
        );
        assert!(
            (p99 as f64 - 9_900_000.0).abs() / 9_900_000.0 < 0.15,
            "p99 {p99}"
        );
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 300);
    }

    proptest! {
        /// Bucketing never loses observations and quantiles are monotone.
        #[test]
        fn histogram_is_total_and_monotone(values in proptest::collection::vec(1u64..u64::MAX / 2, 1..500)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            let qs: Vec<_> = [0.0, 0.25, 0.5, 0.75, 0.99, 1.0]
                .iter()
                .map(|&q| h.quantile(q))
                .collect();
            for w in qs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        /// bucket_lower(bucket_of(v)) <= v for all v (lower bound is sound).
        #[test]
        fn bucket_bounds_sound(v in 1u64..u64::MAX / 2) {
            let idx = bucket_of(v);
            prop_assert!(bucket_lower(idx) <= v);
            if idx + 1 < BUCKETS {
                prop_assert!(bucket_lower(idx + 1) > v || bucket_lower(idx + 1) == bucket_lower(idx));
            }
        }
    }
}
