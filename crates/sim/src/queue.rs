//! The event calendar: a two-tier ring-bucket queue of `(time, actor,
//! message)` entries.
//!
//! The queue is generic over the message type so protocol crates can define
//! their own message enums. Determinism is guaranteed by breaking timestamp
//! ties with a monotonically increasing sequence number: two events scheduled
//! for the same instant are delivered in scheduling order, independent of
//! container internals.
//!
//! # Structure
//!
//! Earlier versions used a single `BinaryHeap`, which at million-client
//! scale spends its time on `O(log n)` sift operations and allocator
//! churn. This version is a classic calendar queue with an overflow tier:
//!
//! - a **ring** of `RING_BUCKETS` time buckets, each `BUCKET_WIDTH`
//!   virtual nanoseconds wide, covering the window starting at the
//!   current time. Each bucket is a `Vec` kept sorted by `(at, seq)`
//!   descending, so the next event pops from the back in O(1). Bucket
//!   vectors are reused across laps (capacity is retained), so the
//!   steady-state hot path allocates nothing.
//! - an **occupancy bitmap** (one bit per bucket) so finding the next
//!   non-empty bucket is a handful of `trailing_zeros` scans instead of
//!   a linear walk.
//! - an **overflow** `BinaryHeap` for events scheduled beyond the ring
//!   window. Overflow entries migrate into the ring lazily as virtual
//!   time advances.
//!
//! All ring entries are strictly earlier than all (migrated-invariant
//! respecting) overflow entries, and equal-timestamp entries always land
//! in the same bucket, so the pop order is the exact `(at, seq)` total
//! order of the historical heap — the property suite pins this against a
//! reference `BinaryHeap` implementation.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of an actor in the simulation world.
///
/// The kernel attaches no meaning to the value; the world that owns the
/// queue maps IDs to compute nodes, storage services, clients, etc.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ActorId(pub u32);

/// An event popped from the queue, ready to dispatch.
#[derive(Debug, PartialEq, Eq)]
pub struct ScheduledEvent<M> {
    /// Virtual delivery time.
    pub at: Nanos,
    /// Destination actor.
    pub dest: ActorId,
    /// The message payload.
    pub msg: M,
}

/// log2 of the bucket width: 2^21 ns ≈ 2.1 ms per bucket.
const BUCKET_SHIFT: u32 = 21;
/// Virtual width of one ring bucket in nanoseconds.
const BUCKET_WIDTH: Nanos = 1 << BUCKET_SHIFT;
/// Ring size (power of two): 2048 buckets ≈ 4.3 s of lookahead.
const RING_BUCKETS: usize = 2048;
/// Words in the occupancy bitmap.
const RING_WORDS: usize = RING_BUCKETS / 64;

/// Absolute bucket index of a timestamp.
fn bucket_of(at: Nanos) -> u64 {
    at / BUCKET_WIDTH
}

struct Entry<M> {
    at: Nanos,
    seq: u64,
    dest: ActorId,
    msg: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the scheduling sequence number as a deterministic
        // tie-breaker.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
pub struct EventQueue<M> {
    /// Ring buckets, indexed by `bucket % RING_BUCKETS`. Each bucket is
    /// sorted by `(at, seq)` descending so the minimum pops from the back.
    ring: Vec<Vec<Entry<M>>>,
    /// One occupancy bit per ring bucket.
    occupied: [u64; RING_WORDS],
    /// Events beyond the ring window, migrated in lazily.
    overflow: BinaryHeap<Entry<M>>,
    now: Nanos,
    seq: u64,
    delivered: u64,
    pending: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Create an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; RING_WORDS],
            overflow: BinaryHeap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
            pending: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule `msg` for delivery to `dest` after `delay` virtual time.
    pub fn schedule(&mut self, delay: Nanos, dest: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), dest, msg);
    }

    /// Schedule `msg` for delivery at absolute time `at`.
    ///
    /// Events cannot be scheduled in the past; `at` is clamped to `now` so
    /// causality is preserved even with zero-latency messages.
    pub fn schedule_at(&mut self, at: Nanos, dest: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        let e = Entry { at, seq, dest, msg };
        if bucket_of(at) < bucket_of(self.now) + RING_BUCKETS as u64 {
            self.ring_insert(e);
        } else {
            self.overflow.push(e);
        }
    }

    /// Insert into the ring bucket for `e.at`, keeping the bucket sorted
    /// by `(at, seq)` descending.
    fn ring_insert(&mut self, e: Entry<M>) {
        let slot = (bucket_of(e.at) as usize) & (RING_BUCKETS - 1);
        let bucket = &mut self.ring[slot];
        let pos = bucket.partition_point(|x| (x.at, x.seq) > (e.at, e.seq));
        bucket.insert(pos, e);
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    /// Move every overflow entry whose bucket has entered the ring window
    /// into the ring. Called before popping so the ring-before-overflow
    /// time ordering invariant holds at the current window position.
    fn migrate(&mut self) {
        let horizon = bucket_of(self.now) + RING_BUCKETS as u64;
        while self
            .overflow
            .peek()
            .is_some_and(|head| bucket_of(head.at) < horizon)
        {
            let Some(e) = self.overflow.pop() else { break };
            self.ring_insert(e);
        }
    }

    /// First occupied ring slot at or (circularly) after `start`, in
    /// window order.
    fn first_occupied(&self, start: usize) -> Option<usize> {
        let mut word = start / 64;
        let mut mask = !0u64 << (start % 64);
        // One extra iteration re-covers the starting word's low bits,
        // which map to the far end of the window.
        for _ in 0..=RING_WORDS {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            mask = !0;
            word = (word + 1) % RING_WORDS;
        }
        None
    }

    /// Pop the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        if self.pending == 0 {
            return None;
        }
        self.migrate();
        let start = (bucket_of(self.now) as usize) & (RING_BUCKETS - 1);
        let from_ring = self.first_occupied(start).and_then(|slot| {
            let bucket = &mut self.ring[slot];
            let e = bucket.pop();
            if bucket.is_empty() {
                self.occupied[slot / 64] &= !(1 << (slot % 64));
            }
            e
        });
        let e = match from_ring {
            Some(e) => e,
            // Ring empty: the next event is beyond the window.
            None => self.overflow.pop()?,
        };
        debug_assert!(e.at >= self.now, "event queue time went backwards");
        self.now = e.at;
        self.delivered += 1;
        self.pending -= 1;
        Some(ScheduledEvent {
            at: e.at,
            dest: e.dest,
            msg: e.msg,
        })
    }

    /// Peek at the timestamp of the next event without popping.
    #[must_use]
    pub fn next_time(&self) -> Option<Nanos> {
        let start = (bucket_of(self.now) as usize) & (RING_BUCKETS - 1);
        let ring_min = self
            .first_occupied(start)
            .and_then(|slot| self.ring[slot].last())
            .map(|e| e.at);
        let overflow_min = self.overflow.peek().map(|e| e.at);
        match (ring_min, overflow_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, ActorId(0), "c");
        q.schedule(10, ActorId(0), "a");
        q.schedule(20, ActorId(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), 30);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, ActorId(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_advances_with_pops_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(100, ActorId(1), "late");
        q.pop().unwrap();
        assert_eq!(q.now(), 100);
        // Scheduling at an absolute time in the past clamps to `now`.
        q.schedule_at(50, ActorId(1), "clamped");
        let e = q.pop().unwrap();
        assert_eq!(e.at, 100);
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn relative_scheduling_is_from_current_time() {
        let mut q = EventQueue::new();
        q.schedule(10, ActorId(0), ());
        q.pop().unwrap();
        q.schedule(5, ActorId(0), ());
        assert_eq!(q.next_time(), Some(15));
    }

    #[test]
    fn overflow_events_migrate_into_the_ring() {
        let mut q = EventQueue::new();
        // Far beyond the ring window: lands in overflow.
        let far = BUCKET_WIDTH * (RING_BUCKETS as u64) * 3 + 17;
        q.schedule_at(far, ActorId(0), "far");
        q.schedule_at(5, ActorId(0), "near");
        assert_eq!(q.next_time(), Some(5));
        assert_eq!(q.pop().unwrap().msg, "near");
        assert_eq!(q.next_time(), Some(far));
        // After popping "near", scheduling between now and `far` still
        // pops in time order even though `far` sits in overflow.
        q.schedule_at(far - 1, ActorId(0), "just-before");
        assert_eq!(q.pop().unwrap().msg, "just-before");
        assert_eq!(q.pop().unwrap().msg, "far");
        assert_eq!(q.now(), far);
        assert!(q.pop().is_none());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn equal_times_across_tiers_preserve_scheduling_order() {
        let mut q = EventQueue::new();
        let t = BUCKET_WIDTH * (RING_BUCKETS as u64) + 100; // overflow at t=0
        q.schedule_at(t, ActorId(0), 0);
        // Advance time so `t` enters the ring window, then schedule a
        // second event at the same instant (ring tier this time).
        q.schedule_at(t - BUCKET_WIDTH, ActorId(0), 99);
        assert_eq!(q.pop().unwrap().msg, 99);
        q.schedule_at(t, ActorId(0), 1);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec![0, 1]);
    }

    /// Reference implementation: the historical single-`BinaryHeap` queue.
    struct RefQueue {
        heap: BinaryHeap<Entry<usize>>,
        now: Nanos,
        seq: u64,
    }

    impl RefQueue {
        fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                now: 0,
                seq: 0,
            }
        }
        fn schedule_at(&mut self, at: Nanos, msg: usize) {
            let at = at.max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry {
                at,
                seq,
                dest: ActorId(0),
                msg,
            });
        }
        fn pop(&mut self) -> Option<(Nanos, usize)> {
            let e = self.heap.pop()?;
            self.now = e.at;
            Some((e.at, e.msg))
        }
    }

    proptest! {
        /// Pop order is always non-decreasing in time, regardless of the
        /// insertion pattern, and every event is delivered exactly once.
        #[test]
        fn pops_are_monotone(delays in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, d) in delays.iter().enumerate() {
                q.schedule_at(*d, ActorId(0), i);
            }
            let mut last = 0;
            let mut count = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.at >= last);
                last = e.at;
                count += 1;
            }
            prop_assert_eq!(count, delays.len());
        }

        /// The ring/overflow queue pops the exact `(at, seq)` order of the
        /// reference heap under interleaved schedule/pop traffic that
        /// crosses bucket and window boundaries.
        #[test]
        fn matches_reference_heap(
            ops in proptest::collection::vec(
                (0u64..(BUCKET_WIDTH * RING_BUCKETS as u64 * 2), 0u8..4),
                1..300,
            ),
        ) {
            let mut q = EventQueue::new();
            let mut r = RefQueue::new();
            let mut id = 0usize;
            for (at, kind) in ops {
                if kind == 0 {
                    // Interleave pops with schedules.
                    let a = q.pop().map(|e| (e.at, e.msg));
                    let b = r.pop();
                    prop_assert_eq!(a, b);
                } else {
                    q.schedule_at(at, ActorId(0), id);
                    r.schedule_at(at, id);
                    id += 1;
                }
            }
            loop {
                let a = q.pop().map(|e| (e.at, e.msg));
                let b = r.pop();
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
