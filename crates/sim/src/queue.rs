//! The event calendar: a priority queue of `(time, actor, message)` entries.
//!
//! The queue is generic over the message type so protocol crates can define
//! their own message enums. Determinism is guaranteed by breaking timestamp
//! ties with a monotonically increasing sequence number: two events scheduled
//! for the same instant are delivered in scheduling order, independent of
//! heap internals.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of an actor in the simulation world.
///
/// The kernel attaches no meaning to the value; the world that owns the
/// queue maps IDs to compute nodes, storage services, clients, etc.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ActorId(pub u32);

/// An event popped from the queue, ready to dispatch.
#[derive(Debug, PartialEq, Eq)]
pub struct ScheduledEvent<M> {
    /// Virtual delivery time.
    pub at: Nanos,
    /// Destination actor.
    pub dest: ActorId,
    /// The message payload.
    pub msg: M,
}

struct Entry<M> {
    at: Nanos,
    seq: u64,
    dest: ActorId,
    msg: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the scheduling sequence number as a deterministic
        // tie-breaker.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    now: Nanos,
    seq: u64,
    delivered: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Create an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `msg` for delivery to `dest` after `delay` virtual time.
    pub fn schedule(&mut self, delay: Nanos, dest: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), dest, msg);
    }

    /// Schedule `msg` for delivery at absolute time `at`.
    ///
    /// Events cannot be scheduled in the past; `at` is clamped to `now` so
    /// causality is preserved even with zero-latency messages.
    pub fn schedule_at(&mut self, at: Nanos, dest: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, dest, msg });
    }

    /// Pop the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue time went backwards");
        self.now = e.at;
        self.delivered += 1;
        Some(ScheduledEvent {
            at: e.at,
            dest: e.dest,
            msg: e.msg,
        })
    }

    /// Peek at the timestamp of the next event without popping.
    #[must_use]
    pub fn next_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, ActorId(0), "c");
        q.schedule(10, ActorId(0), "a");
        q.schedule(20, ActorId(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), 30);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, ActorId(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_advances_with_pops_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(100, ActorId(1), "late");
        q.pop().unwrap();
        assert_eq!(q.now(), 100);
        // Scheduling at an absolute time in the past clamps to `now`.
        q.schedule_at(50, ActorId(1), "clamped");
        let e = q.pop().unwrap();
        assert_eq!(e.at, 100);
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn relative_scheduling_is_from_current_time() {
        let mut q = EventQueue::new();
        q.schedule(10, ActorId(0), ());
        q.pop().unwrap();
        q.schedule(5, ActorId(0), ());
        assert_eq!(q.next_time(), Some(15));
    }

    proptest! {
        /// Pop order is always non-decreasing in time, regardless of the
        /// insertion pattern, and every event is delivered exactly once.
        #[test]
        fn pops_are_monotone(delays in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, d) in delays.iter().enumerate() {
                q.schedule_at(*d, ActorId(0), i);
            }
            let mut last = 0;
            let mut count = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.at >= last);
                last = e.at;
                count += 1;
            }
            prop_assert_eq!(count, delays.len());
        }
    }
}
