//! Deterministic granule-heat accounting: an exact counter vector and a
//! count-min sketch behind one [`HeatTracker`] facade.
//!
//! The cluster simulator records one heat increment per granule touch to
//! drive the autoscaler's hot-granule rebalance planner. At paper scale
//! (a few hundred thousand granules) an exact `Vec<u32>` is cheap; at
//! `million_clients` scale the observation path wants sublinear space
//! and a heavy-hitter shortlist instead of an O(granules) scan per
//! observation window. [`HeatTracker`] picks the representation once at
//! construction:
//!
//! - **Exact** — a plain per-granule vector, bit-identical to the
//!   historical `granule_hits` accounting. Used whenever the sketch is
//!   disabled *or* the granule count is below the configured threshold
//!   (where sketch overhead would exceed the vector it replaces).
//! - **Sketched** — a [`CountMinSketch`] plus a bounded heavy-hitter
//!   candidate list. Estimates never undercount; the expected
//!   overcount per row is `total / width`, and the documented test
//!   envelope is `8 * total / width` (see the property suite).
//!
//! Determinism: row seeds come from a caller-provided [`DetRng`]
//! (forked, never the simulator's main stream), hashing is a fixed
//! multiply-xor mix, and the candidate list is maintained with fully
//! ordered tie-breaks — the same access stream always yields the same
//! shortlist, which is what lets the engine-parity suite pin
//! sketch-vs-exact rebalance plans against each other.

use crate::rng::DetRng;

/// Rows in the count-min sketch (independent hash functions).
const ROWS: usize = 4;

/// Maximum heavy-hitter candidates retained by a sketched tracker. Must
/// comfortably exceed the observation surface's shortlist (64) so the
/// top of the candidate list matches what an exact scan would return on
/// skewed workloads.
const CANDIDATES: usize = 256;

/// A deterministic count-min sketch over `u64` keys.
///
/// Estimates are upper bounds: `estimate(k) >= true_count(k)` always,
/// with expected per-row excess `total() / width`. Merging two sketches
/// of identical shape and seeds adds their tables, so estimates are
/// monotone under [`CountMinSketch::merge`].
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    /// Row-major `ROWS x width` counter table.
    counts: Vec<u32>,
    /// Power-of-two row width.
    width: usize,
    /// Per-row hash seeds, drawn from the constructor's `DetRng`.
    seeds: [u64; ROWS],
    /// Total weight recorded (sum of all `record` increments).
    total: u64,
}

impl CountMinSketch {
    /// Build a sketch with `width` counters per row (rounded up to a
    /// power of two, minimum 16), seeding the row hashes from `rng`.
    #[must_use]
    pub fn new(width: usize, rng: &mut DetRng) -> Self {
        let width = width.max(16).next_power_of_two();
        let mut seeds = [0u64; ROWS];
        for s in &mut seeds {
            // Ensure seeds are odd so the multiply below never fixes 0.
            *s = rng.next_u64() | 1;
        }
        CountMinSketch {
            counts: vec![0; ROWS * width],
            width,
            seeds,
            total: 0,
        }
    }

    /// Row-local bucket of `key` under this row's seed.
    fn bucket(&self, row: usize, key: u64) -> usize {
        // SplitMix64-style finalizer keyed by the row seed: deterministic,
        // well-mixed, and cheap enough for the per-touch hot path.
        let mut h = key ^ self.seeds[row];
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h as usize) & (self.width - 1)
    }

    /// Add `weight` to `key`'s counters.
    pub fn record(&mut self, key: u64, weight: u32) {
        for row in 0..ROWS {
            let b = self.bucket(row, key);
            let slot = &mut self.counts[row * self.width + b];
            *slot = slot.saturating_add(weight);
        }
        self.total += u64::from(weight);
    }

    /// Upper-bound estimate of `key`'s recorded weight (min over rows).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u32 {
        (0..ROWS)
            .map(|row| self.counts[row * self.width + self.bucket(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Counters per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total weight recorded since construction or the last [`reset`].
    ///
    /// [`reset`]: CountMinSketch::reset
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Zero every counter, keeping shape and seeds.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// Fold another sketch of identical shape and seeds into this one.
    ///
    /// # Panics
    /// Panics if widths or seeds differ (merging differently-hashed
    /// tables would produce meaningless estimates).
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(self.width, other.width, "sketch widths differ");
        assert_eq!(self.seeds, other.seeds, "sketch seeds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total += other.total;
    }
}

/// Representation behind a [`HeatTracker`].
#[derive(Clone, Debug)]
enum Heat {
    /// Exact per-key counter vector (historical behavior).
    Exact(Vec<u32>),
    /// Count-min sketch plus a bounded heavy-hitter candidate list of
    /// `(key, estimate)` pairs.
    Sketched {
        /// The error-bounded counter table.
        sketch: CountMinSketch,
        /// Current heavy-hitter candidates, unordered; pruned to the
        /// lowest estimate when full.
        candidates: Vec<(u64, u32)>,
    },
}

/// Granule-heat tracker: exact below a size threshold, sketched above.
///
/// The facade exposes exactly the operations the simulator's
/// observation path needs — weighted increments, a hottest-`k`
/// shortlist sorted like the historical exact scan, and a window reset
/// — so swapping representations cannot change the observation surface.
#[derive(Clone, Debug)]
pub struct HeatTracker {
    /// Number of distinct keys (granules) tracked.
    keys: usize,
    /// The active representation, fixed at construction.
    heat: Heat,
}

impl HeatTracker {
    /// Build a tracker over `keys` distinct keys.
    ///
    /// Uses the exact vector unless `sketch` is requested *and* `keys >=
    /// sketch_min`; `rng` seeds the sketch rows (pass a forked stream,
    /// not the simulation's main RNG). The sketch width is sized to
    /// `keys / 8` (clamped to `[1024, 65536]`) so space stays sublinear
    /// while the expected excess `total/width` remains small relative to
    /// per-window hot-granule counts.
    #[must_use]
    pub fn new(keys: usize, sketch: bool, sketch_min: usize, rng: &mut DetRng) -> Self {
        let heat = if sketch && keys >= sketch_min {
            let width = (keys / 8).clamp(1_024, 65_536);
            Heat::Sketched {
                sketch: CountMinSketch::new(width, rng),
                candidates: Vec::with_capacity(CANDIDATES),
            }
        } else {
            Heat::Exact(vec![0; keys])
        };
        HeatTracker { keys, heat }
    }

    /// Whether this tracker is running on the sketched representation.
    #[must_use]
    pub fn is_sketched(&self) -> bool {
        matches!(self.heat, Heat::Sketched { .. })
    }

    /// Add `weight` touches to `key`.
    pub fn record(&mut self, key: usize, weight: u32) {
        match &mut self.heat {
            Heat::Exact(v) => v[key] = v[key].saturating_add(weight),
            Heat::Sketched { sketch, candidates } => {
                let k = key as u64;
                sketch.record(k, weight);
                let est = sketch.estimate(k);
                if let Some(c) = candidates.iter_mut().find(|(ck, _)| *ck == k) {
                    c.1 = est;
                } else if candidates.len() < CANDIDATES {
                    candidates.push((k, est));
                } else if let Some((i, &(_, min_est))) = candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (ck, e))| (*e, *ck))
                {
                    // Evict the coldest candidate (ties: lowest key) if
                    // the newcomer's estimate beats it — a deterministic
                    // space-saving style admission rule.
                    if est > min_est {
                        candidates[i] = (k, est);
                    }
                }
            }
        }
    }

    /// Estimated touches for `key` in the current window (exact in
    /// exact mode; an upper bound in sketched mode).
    #[must_use]
    pub fn estimate(&self, key: usize) -> u32 {
        match &self.heat {
            Heat::Exact(v) => v[key],
            Heat::Sketched { sketch, .. } => sketch.estimate(key as u64),
        }
    }

    /// The hottest `k` keys, sorted by `(count, key)` descending — the
    /// exact order the historical `granule_hits` scan produced. Keys
    /// with zero heat never appear.
    #[must_use]
    pub fn hottest(&self, k: usize) -> Vec<(usize, u32)> {
        let mut hot: Vec<(u32, usize)> = match &self.heat {
            Heat::Exact(v) => v
                .iter()
                .enumerate()
                .filter(|(_, h)| **h > 0)
                .map(|(g, h)| (*h, g))
                .collect(),
            Heat::Sketched { candidates, .. } => candidates
                .iter()
                .filter(|(_, e)| *e > 0)
                .map(|(ck, e)| (*e, *ck as usize))
                .collect(),
        };
        hot.sort_unstable_by(|a, b| b.cmp(a));
        hot.truncate(k);
        hot.into_iter().map(|(h, g)| (g, h)).collect()
    }

    /// Clear the window: zero all counters and drop sketch candidates.
    pub fn reset(&mut self) {
        match &mut self.heat {
            Heat::Exact(v) => v.fill(0),
            Heat::Sketched { sketch, candidates } => {
                sketch.reset();
                candidates.clear();
            }
        }
    }

    /// Number of distinct keys this tracker covers.
    #[must_use]
    pub fn keys(&self) -> usize {
        self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed(0xC0FFEE)
    }

    #[test]
    fn sketch_never_undercounts() {
        let mut s = CountMinSketch::new(64, &mut rng());
        for k in 0..1_000u64 {
            s.record(k % 97, 1);
        }
        for k in 0..97u64 {
            assert!(u64::from(s.estimate(k)) >= 1_000 / 97);
        }
        assert_eq!(s.total(), 1_000);
    }

    #[test]
    fn exact_tracker_matches_plain_vector() {
        let mut t = HeatTracker::new(100, false, 4, &mut rng());
        assert!(!t.is_sketched());
        t.record(3, 2);
        t.record(7, 1);
        t.record(3, 1);
        assert_eq!(t.estimate(3), 3);
        assert_eq!(t.estimate(7), 1);
        assert_eq!(t.hottest(10), vec![(3, 3), (7, 1)]);
        t.reset();
        assert_eq!(t.hottest(10), vec![]);
    }

    #[test]
    fn hottest_breaks_ties_toward_higher_key_like_the_exact_scan() {
        let mut t = HeatTracker::new(10, false, 1_000_000, &mut rng());
        t.record(2, 5);
        t.record(8, 5);
        t.record(5, 9);
        assert_eq!(t.hottest(3), vec![(5, 9), (8, 5), (2, 5)]);
    }

    #[test]
    fn sketched_tracker_finds_heavy_hitters() {
        let mut t = HeatTracker::new(100_000, true, 4_096, &mut rng());
        assert!(t.is_sketched());
        // One heavy key among light background traffic.
        for i in 0..5_000usize {
            t.record(i % 1_000, 1);
        }
        t.record(42_424, 10_000);
        let hot = t.hottest(1);
        assert_eq!(hot[0].0, 42_424);
        assert!(hot[0].1 >= 10_000);
    }

    #[test]
    fn threshold_falls_back_to_exact() {
        let t = HeatTracker::new(100, true, 4_096, &mut rng());
        assert!(!t.is_sketched());
        let t = HeatTracker::new(100_000, true, 4_096, &mut rng());
        assert!(t.is_sketched());
    }
}
