//! Deterministic randomness for simulations and workload generators.
//!
//! Every scenario owns a [`DetRng`] seeded from the scenario configuration,
//! so runs are bit-for-bit reproducible. Child generators can be forked with
//! a label so independent components (each client, each node) draw from
//! decorrelated streams without sharing mutable state.
//!
//! The generator is a self-contained xoshiro256++ (public domain, Blackman
//! & Vigna) seeded through a SplitMix64 expansion, so the crate needs no
//! external RNG dependency and streams are identical on every platform.

/// A seeded, fast, deterministic random number generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    base_seed: u64,
    state: [u64; 4],
}

/// SplitMix64 step: expands a 64-bit seed into decorrelated words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// Every seed — including the degenerate-looking `0` and `u64::MAX` —
    /// yields a healthy stream: the SplitMix64 expansion decorrelates the
    /// four xoshiro256++ state words, and SplitMix64 maps no input to
    /// four zero outputs in a row, so the all-zero state (the one input
    /// xoshiro cannot escape) is unreachable from `seed`.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            base_seed: seed,
            state,
        }
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Fork a decorrelated child stream identified by `label`.
    ///
    /// Forking is pure: it does not consume randomness from `self`, so the
    /// child streams of a given parent seed are stable even if components
    /// are created in a different order.
    ///
    /// Label collisions are well-defined: two forks with the same label
    /// from the same parent are *identical* streams (purity makes that a
    /// feature — replays reconstruct components independently), and every
    /// fork — including `fork(0)`, whose label contributes nothing to the
    /// mix — still diverges from the parent's own output stream, because
    /// the child's state is a fresh SplitMix64 expansion of the finalized
    /// seed rather than a copy of the parent's xoshiro state.
    #[must_use]
    pub fn fork(&self, label: u64) -> DetRng {
        // SplitMix64 finalizer mixes the label into a fresh seed.
        let mut z = self
            .base_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::seed(z ^ (z >> 31))
    }

    /// Next 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let span = hi - lo;
        // Lemire's multiply-shift with rejection for exact uniformity.
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(span);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for think times and service-time jitter; the result is clamped
    /// to at least 1 to keep virtual time strictly advancing.
    pub fn exp(&mut self, mean: f64) -> u64 {
        let u = self.unit().max(f64::EPSILON);
        ((-u.ln()) * mean).max(1.0) as u64
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.range(0, items.len() as u64) as usize;
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(42);
        let mut b = DetRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let parent = DetRng::seed(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn forks_are_stable_and_pure() {
        let parent = DetRng::seed(7);
        let mut a = parent.fork(5);
        // Forking other labels in between must not change label 5's stream.
        let _ = parent.fork(6);
        let mut b = parent.fork(5);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_zero_is_not_degenerate() {
        // xoshiro's one pathological state is all-zero; the SplitMix64
        // expansion must keep seed(0) (and other "degenerate" seeds)
        // away from it and producing varied output.
        for seed in [0, 1, u64::MAX] {
            let mut r = DetRng::seed(seed);
            let draws: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
            assert!(draws.iter().any(|&d| d != 0), "seed {seed} stuck at zero");
            assert!(
                draws.windows(2).any(|w| w[0] != w[1]),
                "seed {seed} produced a constant stream"
            );
        }
        // And distinct degenerate seeds give distinct streams.
        let mut a = DetRng::seed(0);
        let mut b = DetRng::seed(u64::MAX);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn same_label_forks_are_identical_but_diverge_from_parent() {
        let parent = DetRng::seed(42);
        // A label collision yields the *same* child stream (fork is pure),
        // not a silently different one.
        let mut c1 = parent.fork(5);
        let mut c2 = parent.fork(5);
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Every fork — label 0 included, whose mixed-in contribution is
        // zero — must still diverge from the parent's own output stream.
        for label in [0, 5, u64::MAX] {
            let mut p = DetRng::seed(42);
            let mut child = p.fork(label);
            let diverged = (0..20).any(|_| p.next_u64() != child.next_u64());
            assert!(diverged, "fork({label}) shadowed the parent stream");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::seed(1);
        for _ in 0..1_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn exp_is_positive_with_roughly_right_mean() {
        let mut r = DetRng::seed(3);
        let n = 20_000;
        let mean = 1_000.0;
        let sum: u64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = DetRng::seed(9);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = DetRng::seed(11);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = DetRng::seed(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = DetRng::seed(17);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
