//! WAL record codec for data transactions.
//!
//! Upon commit, a transaction sends only its updates to the WAL (§3.2).
//! A [`TxnUpdateRecord`] carries the transaction ID and its row writes;
//! [`TxnUpdateRecord::encode`] produces the log payload and
//! [`TxnUpdateRecord::to_page_updates`] derives the page-level deltas the
//! storage replay service applies (see `marlin-storage::wire`).
//!
//! Framing (little-endian):
//!
//! ```text
//! magic u16 = 0x4D57 ("MW") | txn_id u64 | write_count u32
//! repeat: table u32 | granule u64 | key u64 | page_index u32 | len u32 | bytes
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use marlin_common::{GranuleId, PageId, TableId, TxnId};
use marlin_storage::{PageUpdate, PageWrite};

const MAGIC: u16 = 0x4D57;

/// One row write inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowWrite {
    pub table: TableId,
    pub granule: GranuleId,
    pub key: u64,
    /// Page within the granule this row maps to (computed by the caller
    /// from the granule layout).
    pub page_index: u32,
    /// New row value.
    pub value: Bytes,
}

impl RowWrite {
    /// The page this write lands on.
    #[must_use]
    pub fn page(&self) -> PageId {
        PageId {
            table: self.table,
            granule: self.granule,
            index: self.page_index,
        }
    }
}

/// The WAL record of one committed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnUpdateRecord {
    pub txn: TxnId,
    pub writes: Vec<RowWrite>,
}

impl TxnUpdateRecord {
    /// Encode into a log payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            16 + self
                .writes
                .iter()
                .map(|w| 28 + w.value.len())
                .sum::<usize>(),
        );
        buf.put_u16_le(MAGIC);
        buf.put_u64_le(self.txn.0);
        buf.put_u32_le(self.writes.len() as u32);
        for w in &self.writes {
            buf.put_u32_le(w.table.0);
            buf.put_u64_le(w.granule.0);
            buf.put_u64_le(w.key);
            buf.put_u32_le(w.page_index);
            buf.put_u32_le(w.value.len() as u32);
            buf.put_slice(&w.value);
        }
        buf.freeze()
    }

    /// Decode from a log payload; `None` if the payload is not a data
    /// transaction record (e.g. a coordination record).
    #[must_use]
    pub fn decode(payload: &Bytes) -> Option<Self> {
        let mut buf = payload.clone();
        if buf.remaining() < 2 + 8 + 4 || buf.get_u16_le() != MAGIC {
            return None;
        }
        let txn = TxnId(buf.get_u64_le());
        let count = buf.get_u32_le() as usize;
        let mut writes = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 + 8 + 8 + 4 + 4 {
                return None;
            }
            let table = TableId(buf.get_u32_le());
            let granule = GranuleId(buf.get_u64_le());
            let key = buf.get_u64_le();
            let page_index = buf.get_u32_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return None;
            }
            let value = buf.copy_to_bytes(len);
            writes.push(RowWrite {
                table,
                granule,
                key,
                page_index,
                value,
            });
        }
        if buf.has_remaining() {
            return None;
        }
        Some(TxnUpdateRecord { txn, writes })
    }

    /// Derive the page-level updates for the replay service: each row
    /// write becomes a delta on its page, carrying `key | value` so a
    /// cold-cache reader can reconstruct rows from `GetPage@LSN`.
    #[must_use]
    pub fn to_page_updates(&self) -> Vec<PageUpdate> {
        self.writes
            .iter()
            .map(|w| {
                let mut delta = BytesMut::with_capacity(12 + w.value.len());
                delta.put_u64_le(w.key);
                delta.put_u32_le(w.value.len() as u32);
                delta.put_slice(&w.value);
                PageUpdate {
                    page: w.page(),
                    write: PageWrite::Delta(delta.freeze()),
                }
            })
            .collect()
    }

    /// Reconstruct `key -> value` rows from a page's delta chain (the
    /// inverse of [`Self::to_page_updates`] on the read path).
    #[must_use]
    pub fn rows_from_page_deltas(deltas: &[Bytes]) -> Vec<(u64, Bytes)> {
        let mut rows = Vec::new();
        for delta in deltas {
            let mut buf = delta.clone();
            while buf.remaining() >= 12 {
                let key = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    break;
                }
                rows.push((key, buf.copy_to_bytes(len)));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::NodeId;
    use proptest::prelude::*;

    fn record() -> TxnUpdateRecord {
        TxnUpdateRecord {
            txn: TxnId::new(NodeId(2), 17),
            writes: vec![
                RowWrite {
                    table: TableId(0),
                    granule: GranuleId(4),
                    key: 1000,
                    page_index: 1,
                    value: Bytes::from_static(b"hello"),
                },
                RowWrite {
                    table: TableId(1),
                    granule: GranuleId(9),
                    key: 2000,
                    page_index: 0,
                    value: Bytes::new(),
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = record();
        assert_eq!(TxnUpdateRecord::decode(&r.encode()), Some(r));
    }

    #[test]
    fn non_wal_payloads_are_rejected() {
        assert_eq!(TxnUpdateRecord::decode(&Bytes::from_static(b"")), None);
        assert_eq!(
            TxnUpdateRecord::decode(&Bytes::from_static(b"\x00\x00rest")),
            None
        );
    }

    #[test]
    fn page_updates_target_the_right_pages() {
        let r = record();
        let updates = r.to_page_updates();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].page, r.writes[0].page());
        assert_eq!(updates[1].page, r.writes[1].page());
    }

    #[test]
    fn rows_reconstruct_from_deltas_in_order() {
        let r = TxnUpdateRecord {
            txn: TxnId(1),
            writes: vec![
                RowWrite {
                    table: TableId(0),
                    granule: GranuleId(0),
                    key: 5,
                    page_index: 0,
                    value: Bytes::from_static(b"v1"),
                },
                RowWrite {
                    table: TableId(0),
                    granule: GranuleId(0),
                    key: 5,
                    page_index: 0,
                    value: Bytes::from_static(b"v2"),
                },
            ],
        };
        let deltas: Vec<Bytes> = r
            .to_page_updates()
            .into_iter()
            .map(|u| match u.write {
                PageWrite::Delta(d) => d,
                PageWrite::Full(_) => panic!("row writes are deltas"),
            })
            .collect();
        let rows = TxnUpdateRecord::rows_from_page_deltas(&deltas);
        // Later delta wins when materialized into a map.
        assert_eq!(
            rows,
            vec![
                (5, Bytes::from_static(b"v1")),
                (5, Bytes::from_static(b"v2"))
            ]
        );
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            txn in any::<u64>(),
            writes in proptest::collection::vec(
                (0u32..8, 0u64..100, any::<u64>(), 0u32..16, proptest::collection::vec(any::<u8>(), 0..64)),
                0..12,
            )
        ) {
            let r = TxnUpdateRecord {
                txn: TxnId(txn),
                writes: writes
                    .into_iter()
                    .map(|(t, g, k, p, v)| RowWrite {
                        table: TableId(t),
                        granule: GranuleId(g),
                        key: k,
                        page_index: p,
                        value: Bytes::from(v),
                    })
                    .collect(),
            };
            prop_assert_eq!(TxnUpdateRecord::decode(&r.encode()), Some(r));
        }
    }
}
