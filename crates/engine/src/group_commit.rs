//! Group commit: batch log records from many transactions into one append.
//!
//! "We leverage group commit to reduce the storage access overhead by
//! batching log records from multiple transactions and committing them
//! through a single log operation" (§5). The buffer is runtime-agnostic:
//! callers decide *when* to flush (a timer in the simulator, a size bound,
//! or both) and the buffer reports which transactions became durable so
//! their clients can be acknowledged.

use bytes::Bytes;
use marlin_common::TxnId;

/// A size/count-bounded batch of pending log payloads.
#[derive(Debug)]
pub struct GroupCommitBuffer {
    pending: Vec<(TxnId, Bytes)>,
    pending_bytes: usize,
    max_records: usize,
    max_bytes: usize,
    flushes: u64,
    batched_txns: u64,
}

impl GroupCommitBuffer {
    /// Create a buffer that requests a flush at `max_records` records or
    /// `max_bytes` buffered bytes, whichever comes first.
    #[must_use]
    pub fn new(max_records: usize, max_bytes: usize) -> Self {
        assert!(max_records > 0 && max_bytes > 0);
        GroupCommitBuffer {
            pending: Vec::new(),
            pending_bytes: 0,
            max_records,
            max_bytes,
            flushes: 0,
            batched_txns: 0,
        }
    }

    /// Enqueue a transaction's log payload. Returns `true` if the buffer
    /// is full and should be flushed now.
    pub fn push(&mut self, txn: TxnId, payload: Bytes) -> bool {
        self.pending_bytes += payload.len();
        self.pending.push((txn, payload));
        self.pending.len() >= self.max_records || self.pending_bytes >= self.max_bytes
    }

    /// Whether anything is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of buffered records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Buffered payload bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Take the batch: the payloads to append in **one** log operation and
    /// the transactions that become durable once that append succeeds.
    pub fn flush(&mut self) -> (Vec<Bytes>, Vec<TxnId>) {
        let batch = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        if batch.is_empty() {
            return (Vec::new(), Vec::new());
        }
        self.flushes += 1;
        self.batched_txns += batch.len() as u64;
        let mut payloads = Vec::with_capacity(batch.len());
        let mut txns = Vec::with_capacity(batch.len());
        for (txn, payload) in batch {
            txns.push(txn);
            payloads.push(payload);
        }
        (payloads, txns)
    }

    /// Mean transactions per flush so far (batching effectiveness).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.batched_txns as f64 / self.flushes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::NodeId;

    fn txn(n: u32) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn flush_returns_batch_in_order() {
        let mut gc = GroupCommitBuffer::new(10, 1 << 20);
        assert!(!gc.push(txn(1), Bytes::from_static(b"a")));
        assert!(!gc.push(txn(2), Bytes::from_static(b"b")));
        let (payloads, txns) = gc.flush();
        assert_eq!(
            payloads,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")]
        );
        assert_eq!(txns, vec![txn(1), txn(2)]);
        assert!(gc.is_empty());
    }

    #[test]
    fn record_count_triggers_flush_request() {
        let mut gc = GroupCommitBuffer::new(3, 1 << 20);
        assert!(!gc.push(txn(1), Bytes::from_static(b"x")));
        assert!(!gc.push(txn(2), Bytes::from_static(b"x")));
        assert!(gc.push(txn(3), Bytes::from_static(b"x")));
    }

    #[test]
    fn byte_bound_triggers_flush_request() {
        let mut gc = GroupCommitBuffer::new(100, 8);
        assert!(!gc.push(txn(1), Bytes::from_static(b"four")));
        assert!(gc.push(txn(2), Bytes::from_static(b"more")));
        assert_eq!(gc.bytes(), 8);
    }

    #[test]
    fn empty_flush_is_harmless() {
        let mut gc = GroupCommitBuffer::new(4, 64);
        let (payloads, txns) = gc.flush();
        assert!(payloads.is_empty());
        assert!(txns.is_empty());
        assert_eq!(gc.mean_batch_size(), 0.0);
    }

    #[test]
    fn batch_size_statistics() {
        let mut gc = GroupCommitBuffer::new(100, 1 << 20);
        gc.push(txn(1), Bytes::from_static(b"a"));
        gc.push(txn(2), Bytes::from_static(b"b"));
        gc.flush();
        gc.push(txn(3), Bytes::from_static(b"c"));
        gc.flush();
        assert!((gc.mean_batch_size() - 1.5).abs() < 1e-9);
    }
}
