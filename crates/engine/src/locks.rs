//! Two-phase locking with the `NO_WAIT` policy.
//!
//! "By default, all transactions follow serializable isolation through the
//! NO_WAIT protocol which avoids deadlocks" (§5): a transaction that hits a
//! lock conflict aborts immediately instead of waiting, so no waits-for
//! graph can form. Locks are held until commit/abort (strict 2PL).
//!
//! Lock targets cover the three granularities the paper's transactions
//! need: whole granules (migration takes a granule write lock), rows
//! (user-transaction accesses), and GTable entries (user transactions hold
//! *read* locks on the GTable entry of every granule they touch until
//! commit, which is what serializes them against concurrent migrations —
//! Algorithm 1 line 1 note, §4.2).

use marlin_common::{GranuleId, TableId, TxnError, TxnId};
use parking_lot::Mutex;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// What is being locked.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockTarget {
    /// A whole data granule (migration locks these exclusively).
    Granule { table: TableId, granule: GranuleId },
    /// A single row.
    Row { table: TableId, key: u64 },
    /// The GTable entry describing a granule's ownership.
    GTableEntry { granule: GranuleId },
}

/// Lock mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug)]
struct LockEntry {
    mode: LockMode,
    holders: HashSet<TxnId>,
}

#[derive(Debug, Default)]
struct LockTableInner {
    locks: HashMap<LockTarget, LockEntry>,
    held_by_txn: HashMap<TxnId, Vec<LockTarget>>,
    conflicts: u64,
    acquisitions: u64,
}

/// A strict-2PL, NO_WAIT lock table for one compute node.
#[derive(Debug, Default)]
pub struct LockTable {
    inner: Mutex<LockTableInner>,
}

impl LockTable {
    /// Create an empty lock table.
    #[must_use]
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Try to acquire `target` in `mode` for `txn`.
    ///
    /// `NO_WAIT`: on conflict the call fails immediately with
    /// [`TxnError::LockConflict`] and the caller must abort the
    /// transaction. Re-acquisition by the same transaction is a no-op;
    /// a sole shared holder may upgrade to exclusive.
    pub fn try_lock(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Result<(), TxnError> {
        let mut inner = self.inner.lock();
        let decision = match inner.locks.entry(target) {
            Entry::Vacant(v) => {
                v.insert(LockEntry {
                    mode,
                    holders: HashSet::from([txn]),
                });
                Ok(true)
            }
            Entry::Occupied(mut o) => {
                let entry = o.get_mut();
                if entry.holders.contains(&txn) {
                    if entry.mode == LockMode::Shared && mode == LockMode::Exclusive {
                        if entry.holders.len() == 1 {
                            entry.mode = LockMode::Exclusive; // upgrade
                            Ok(false)
                        } else {
                            Err(conflict_of(target))
                        }
                    } else {
                        Ok(false) // already held at sufficient strength
                    }
                } else if entry.mode == LockMode::Shared && mode == LockMode::Shared {
                    entry.holders.insert(txn);
                    Ok(true)
                } else {
                    Err(conflict_of(target))
                }
            }
        };
        match decision {
            Ok(newly_tracked) => {
                inner.acquisitions += 1;
                if newly_tracked {
                    inner.held_by_txn.entry(txn).or_default().push(target);
                }
                Ok(())
            }
            Err(e) => {
                inner.conflicts += 1;
                Err(e)
            }
        }
    }

    /// Release every lock held by `txn` (commit or abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        let targets = inner.held_by_txn.remove(&txn).unwrap_or_default();
        for target in targets {
            if let Entry::Occupied(mut o) = inner.locks.entry(target) {
                let entry = o.get_mut();
                entry.holders.remove(&txn);
                if entry.holders.is_empty() {
                    o.remove();
                }
            }
        }
    }

    /// Release one specific lock early (weaker isolation levels release
    /// user-table read locks after the read; the GTable read lock must
    /// still be held to commit — §4.2).
    pub fn release_one(&self, txn: TxnId, target: LockTarget) {
        let mut inner = self.inner.lock();
        if let Some(list) = inner.held_by_txn.get_mut(&txn) {
            list.retain(|t| *t != target);
        }
        if let Entry::Occupied(mut o) = inner.locks.entry(target) {
            let entry = o.get_mut();
            entry.holders.remove(&txn);
            if entry.holders.is_empty() {
                o.remove();
            }
        }
    }

    /// Whether `txn` currently holds `target` (at any strength).
    #[must_use]
    pub fn holds(&self, txn: TxnId, target: LockTarget) -> bool {
        self.inner
            .lock()
            .locks
            .get(&target)
            .is_some_and(|e| e.holders.contains(&txn))
    }

    /// Number of currently held lock targets.
    #[must_use]
    pub fn active_locks(&self) -> usize {
        self.inner.lock().locks.len()
    }

    /// Total NO_WAIT conflicts observed (abort-rate accounting).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.inner.lock().conflicts
    }

    /// Total successful acquisitions.
    #[must_use]
    pub fn acquisitions(&self) -> u64 {
        self.inner.lock().acquisitions
    }
}

fn conflict_of(target: LockTarget) -> TxnError {
    let granule = match target {
        LockTarget::Granule { granule, .. } | LockTarget::GTableEntry { granule } => granule,
        LockTarget::Row { key, .. } => GranuleId(key), // best-effort context
    };
    TxnError::LockConflict { granule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::NodeId;

    fn txn(n: u32) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn row(key: u64) -> LockTarget {
        LockTarget::Row {
            table: TableId(0),
            key,
        }
    }

    fn granule(g: u64) -> LockTarget {
        LockTarget::Granule {
            table: TableId(0),
            granule: GranuleId(g),
        }
    }

    #[test]
    fn shared_locks_coexist() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(5), LockMode::Shared).unwrap();
        lt.try_lock(txn(2), row(5), LockMode::Shared).unwrap();
        assert!(lt.holds(txn(1), row(5)));
        assert!(lt.holds(txn(2), row(5)));
    }

    #[test]
    fn exclusive_conflicts_abort_immediately() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(5), LockMode::Exclusive).unwrap();
        let err = lt.try_lock(txn(2), row(5), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
        let err = lt
            .try_lock(txn(2), row(5), LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
        assert_eq!(lt.conflicts(), 2);
    }

    #[test]
    fn shared_blocks_exclusive_from_other_txn() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(5), LockMode::Shared).unwrap();
        assert!(lt.try_lock(txn(2), row(5), LockMode::Exclusive).is_err());
    }

    #[test]
    fn reentrant_acquisition_is_noop() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(5), LockMode::Exclusive).unwrap();
        lt.try_lock(txn(1), row(5), LockMode::Exclusive).unwrap();
        lt.try_lock(txn(1), row(5), LockMode::Shared).unwrap(); // weaker is fine
        lt.release_all(txn(1));
        assert_eq!(lt.active_locks(), 0);
    }

    #[test]
    fn sole_shared_holder_upgrades() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(5), LockMode::Shared).unwrap();
        lt.try_lock(txn(1), row(5), LockMode::Exclusive).unwrap();
        // Now exclusive: others conflict.
        assert!(lt.try_lock(txn(2), row(5), LockMode::Shared).is_err());
    }

    #[test]
    fn upgrade_with_other_sharers_conflicts() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(5), LockMode::Shared).unwrap();
        lt.try_lock(txn(2), row(5), LockMode::Shared).unwrap();
        assert!(lt.try_lock(txn(1), row(5), LockMode::Exclusive).is_err());
        // txn(1) still holds its shared lock after the failed upgrade.
        assert!(lt.holds(txn(1), row(5)));
    }

    #[test]
    fn release_all_frees_everything() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(1), LockMode::Shared).unwrap();
        lt.try_lock(txn(1), row(2), LockMode::Exclusive).unwrap();
        lt.try_lock(txn(1), granule(0), LockMode::Exclusive)
            .unwrap();
        lt.release_all(txn(1));
        assert_eq!(lt.active_locks(), 0);
        lt.try_lock(txn(2), row(2), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn release_one_keeps_other_locks() {
        let lt = LockTable::new();
        let gt = LockTarget::GTableEntry {
            granule: GranuleId(3),
        };
        lt.try_lock(txn(1), row(1), LockMode::Shared).unwrap();
        lt.try_lock(txn(1), gt, LockMode::Shared).unwrap();
        // Read Committed releases the user-table read lock early...
        lt.release_one(txn(1), row(1));
        assert!(!lt.holds(txn(1), row(1)));
        // ...but the GTable read lock is held to commit (§4.2).
        assert!(lt.holds(txn(1), gt));
        lt.release_all(txn(1));
        assert_eq!(lt.active_locks(), 0);
    }

    #[test]
    fn shared_release_leaves_other_holders() {
        let lt = LockTable::new();
        lt.try_lock(txn(1), row(7), LockMode::Shared).unwrap();
        lt.try_lock(txn(2), row(7), LockMode::Shared).unwrap();
        lt.release_all(txn(1));
        assert!(lt.holds(txn(2), row(7)));
        assert!(lt.try_lock(txn(3), row(7), LockMode::Exclusive).is_err());
    }

    #[test]
    fn migration_granule_lock_vs_user_txn() {
        // The Figure 6 interleaving: a user transaction holding a write
        // lock on G3 blocks (here: aborts) the MigrationTxn, and vice
        // versa once migration holds the granule lock.
        let lt = LockTable::new();
        let user = txn(1);
        let migration = txn(2);
        lt.try_lock(user, granule(3), LockMode::Exclusive).unwrap();
        assert!(lt
            .try_lock(migration, granule(3), LockMode::Exclusive)
            .is_err());
        lt.release_all(user);
        lt.try_lock(migration, granule(3), LockMode::Exclusive)
            .unwrap();
        assert!(lt
            .try_lock(txn(3), granule(3), LockMode::Exclusive)
            .is_err());
    }

    /// NO_WAIT means no deadlock: crossing lock orders can abort but never
    /// hang (exercised with real threads).
    #[test]
    fn no_wait_never_blocks_across_threads() {
        use std::sync::Arc;
        let lt = Arc::new(LockTable::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let lt = Arc::clone(&lt);
            handles.push(std::thread::spawn(move || {
                let me = txn(t);
                let mut committed = 0;
                for round in 0..200u64 {
                    // Opposite acquisition orders induce would-be deadlocks.
                    let (a, b) = if t % 2 == 0 {
                        (row(1), row(2))
                    } else {
                        (row(2), row(1))
                    };
                    let ok = lt.try_lock(me, a, LockMode::Exclusive).is_ok()
                        && lt.try_lock(me, b, LockMode::Exclusive).is_ok();
                    if ok {
                        committed += 1;
                    }
                    lt.release_all(me);
                    if round % 17 == 0 {
                        std::thread::yield_now();
                    }
                }
                committed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "at least some transactions must make progress");
        assert_eq!(lt.active_locks(), 0);
    }
}
