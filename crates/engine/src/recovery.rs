//! Row recovery from the disaggregated storage layer.
//!
//! Because compute nodes are stateless (§3.2), a node that takes over a
//! granule — scale-out migration or failover — reconstructs the granule's
//! rows from storage. Two paths exist, mirroring the read path of the
//! paper's LogDB:
//!
//! 1. [`recover_granule_from_pages`] — fetch the granule's pages via
//!    `GetPage@LSN` and fold their delta chains into rows (the normal
//!    cold-cache path).
//! 2. [`recover_granule_from_log`] — replay the data WAL directly (used
//!    when the page store lags and the caller prefers log reads, and by
//!    tests as an oracle for path 1).

use crate::store::Granule;
use crate::wal::TxnUpdateRecord;
use bytes::Bytes;
use marlin_common::{GranuleId, KeyRange, LogId, Lsn, PageId, StorageError, TableId};
use marlin_storage::{PageStore, SharedLog};

/// Rebuild a granule's rows by reading pages from the page store.
///
/// `pages_per_granule` must match the layout used on the write path.
/// `(log, as_of)` names the WAL whose replay must have reached `as_of`
/// (typically the failed owner's GLog at the caller's tracked H-LSN);
/// otherwise the underlying [`StorageError::ReplayLag`] is returned so the
/// caller can wait/drive replay and retry.
pub fn recover_granule_from_pages(
    store: &PageStore,
    table: TableId,
    granule: GranuleId,
    range: KeyRange,
    pages_per_granule: u32,
    log: LogId,
    as_of: Lsn,
) -> Result<Granule, StorageError> {
    let mut g = Granule::new(range);
    for index in 0..pages_per_granule {
        let pid = PageId {
            table,
            granule,
            index,
        };
        match store.get_page(pid, log, as_of) {
            Ok(page) => {
                // Deltas are ordered; later writes overwrite earlier ones.
                for (key, value) in TxnUpdateRecord::rows_from_page_deltas(&page.deltas) {
                    g.rows.insert(key, value);
                }
                if !page.base.is_empty() {
                    // Full images carry the same key|len|bytes encoding.
                    let base_rows =
                        TxnUpdateRecord::rows_from_page_deltas(std::slice::from_ref(&page.base));
                    for (key, value) in base_rows {
                        g.rows.entry(key).or_insert(value);
                    }
                }
            }
            Err(StorageError::NoSuchPage) => continue, // never-written page
            Err(e) => return Err(e),
        }
    }
    Ok(g)
}

/// Rebuild a granule's rows by scanning the data WAL from the beginning.
#[must_use]
pub fn recover_granule_from_log(
    log: &SharedLog,
    table: TableId,
    granule: GranuleId,
    range: KeyRange,
) -> Granule {
    let mut g = Granule::new(range);
    for record in log.read_after(Lsn::ZERO) {
        if let Some(update) = TxnUpdateRecord::decode(&record.payload) {
            for w in &update.writes {
                if w.table == table && w.granule == granule {
                    g.rows.insert(w.key, w.value.clone());
                }
            }
        }
    }
    g
}

/// Convenience: the rows of `granule` as `(key, value)` pairs for warm-up
/// shipping (Squall-style scan, §4.4.1).
#[must_use]
pub fn scan_for_warmup(granule: &Granule) -> Vec<(u64, Bytes)> {
    granule.rows.iter().map(|(k, v)| (*k, v.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::RowWrite;
    use marlin_common::{NodeId, TxnId};
    use marlin_storage::ReplayService;

    fn write(key: u64, value: &'static str, page_index: u32) -> RowWrite {
        RowWrite {
            table: TableId(0),
            granule: GranuleId(0),
            key,
            page_index,
            value: Bytes::from_static(value.as_bytes()),
        }
    }

    fn commit_to_log(log: &SharedLog, seq: u32, writes: Vec<RowWrite>) {
        let record = TxnUpdateRecord {
            txn: TxnId::new(NodeId(0), seq),
            writes,
        };
        // The engine appends the WAL payload; the replay service later
        // decodes page updates from the same record. Store both encodings
        // in one payload by encoding page updates (what replay reads) —
        // the WAL payload itself is what `recover_granule_from_log` reads.
        log.append(vec![record.encode()]);
    }

    #[test]
    fn log_recovery_applies_writes_in_order() {
        let log = SharedLog::new();
        commit_to_log(&log, 1, vec![write(5, "v1", 0), write(6, "a", 0)]);
        commit_to_log(&log, 2, vec![write(5, "v2", 0)]);
        let g = recover_granule_from_log(&log, TableId(0), GranuleId(0), KeyRange::new(0, 100));
        assert_eq!(g.rows.len(), 2);
        assert_eq!(g.rows[&5], Bytes::from_static(b"v2"));
        assert_eq!(g.rows[&6], Bytes::from_static(b"a"));
    }

    #[test]
    fn log_recovery_filters_other_granules() {
        let log = SharedLog::new();
        let other = RowWrite {
            table: TableId(0),
            granule: GranuleId(7),
            key: 5,
            page_index: 0,
            value: Bytes::from_static(b"other"),
        };
        commit_to_log(&log, 1, vec![write(1, "mine", 0), other]);
        let g = recover_granule_from_log(&log, TableId(0), GranuleId(0), KeyRange::new(0, 100));
        assert_eq!(g.rows.len(), 1);
        assert!(g.rows.contains_key(&1));
    }

    #[test]
    fn page_recovery_matches_log_recovery() {
        // Page path: replay the WAL's page updates into a page store, then
        // recover from pages; must agree with the log oracle.
        let log = SharedLog::new();
        let store = PageStore::new();
        let records = [
            TxnUpdateRecord {
                txn: TxnId::new(NodeId(0), 1),
                writes: vec![write(1, "x", 0), write(60, "y", 1)],
            },
            TxnUpdateRecord {
                txn: TxnId::new(NodeId(0), 2),
                writes: vec![write(1, "x2", 0)],
            },
        ];
        for r in &records {
            log.append(vec![r.encode()]);
        }
        // Replay: the storage-side service decodes page updates via the
        // engine's codec in the real system; emulate that here.
        for (i, r) in records.iter().enumerate() {
            store.apply(
                LogId::GLog(NodeId(0)),
                Lsn(i as u64 + 1),
                &r.to_page_updates(),
            );
        }
        let from_pages = recover_granule_from_pages(
            &store,
            TableId(0),
            GranuleId(0),
            KeyRange::new(0, 100),
            2,
            LogId::GLog(NodeId(0)),
            Lsn(2),
        )
        .unwrap();
        let from_log =
            recover_granule_from_log(&log, TableId(0), GranuleId(0), KeyRange::new(0, 100));
        assert_eq!(from_pages.rows, from_log.rows);
        assert_eq!(from_pages.rows[&1], Bytes::from_static(b"x2"));
    }

    #[test]
    fn page_recovery_respects_replay_lag() {
        let store = PageStore::new();
        let err = recover_granule_from_pages(
            &store,
            TableId(0),
            GranuleId(0),
            KeyRange::new(0, 100),
            1,
            LogId::GLog(NodeId(0)),
            Lsn(3),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::ReplayLag { .. }));
    }

    #[test]
    fn replay_service_feeds_page_recovery_end_to_end() {
        // Full pipeline: WAL append (page-update encoding) → ReplayService
        // → page store → recovery.
        let log = SharedLog::new();
        let store = PageStore::new();
        let replay = ReplayService::new(LogId::GLog(NodeId(1)), log.clone(), store.clone());
        let record = TxnUpdateRecord {
            txn: TxnId::new(NodeId(1), 1),
            writes: vec![write(10, "end2end", 0)],
        };
        // On the wire, the storage layer stores the page-update encoding.
        log.append(vec![marlin_storage::encode_page_updates(
            &record.to_page_updates(),
        )]);
        replay.replay_until(Lsn(1));
        let g = recover_granule_from_pages(
            &store,
            TableId(0),
            GranuleId(0),
            KeyRange::new(0, 100),
            1,
            LogId::GLog(NodeId(1)),
            Lsn(1),
        )
        .unwrap();
        assert_eq!(g.rows[&10], Bytes::from_static(b"end2end"));
    }

    #[test]
    fn warmup_scan_lists_rows() {
        let mut g = Granule::new(KeyRange::new(0, 10));
        g.rows.insert(2, Bytes::from_static(b"b"));
        g.rows.insert(1, Bytes::from_static(b"a"));
        let scan = scan_for_warmup(&g);
        assert_eq!(scan.len(), 2);
        assert_eq!(scan[0].0, 1);
    }
}
