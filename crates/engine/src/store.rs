//! The materialized granule store: the functional data path.
//!
//! A [`DataStore`] holds the granules a compute node currently owns, each a
//! sorted row map over its key range. This is the fully materialized path
//! used by functional tests, examples, and small-scale scenarios; the
//! large simulated experiments account accesses without materializing rows
//! (DESIGN.md, "Data plane virtualization").

use bytes::Bytes;
use marlin_common::{GranuleId, KeyRange, TableId, TxnError};
use std::collections::BTreeMap;

/// One owned granule: a key range plus its rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Granule {
    /// Key range covered (half-open).
    pub range: KeyRange,
    /// Materialized rows.
    pub rows: BTreeMap<u64, Bytes>,
}

impl Granule {
    /// An empty granule over `range`.
    #[must_use]
    pub fn new(range: KeyRange) -> Self {
        Granule {
            range,
            rows: BTreeMap::new(),
        }
    }

    /// Total bytes of row values (accounting).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.rows.values().map(|v| v.len() as u64).sum()
    }
}

/// The granules a node owns, keyed by `(table, granule)`.
#[derive(Debug, Default)]
pub struct DataStore {
    granules: BTreeMap<(TableId, GranuleId), Granule>,
}

impl DataStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        DataStore::default()
    }

    /// Install a granule (initial load or migration arrival). Replaces any
    /// existing granule with the same identity.
    pub fn install(&mut self, table: TableId, id: GranuleId, granule: Granule) {
        self.granules.insert((table, id), granule);
    }

    /// Remove and return a granule (migration departure).
    pub fn remove(&mut self, table: TableId, id: GranuleId) -> Option<Granule> {
        self.granules.remove(&(table, id))
    }

    /// Whether the node holds this granule.
    #[must_use]
    pub fn holds(&self, table: TableId, id: GranuleId) -> bool {
        self.granules.contains_key(&(table, id))
    }

    /// Borrow a granule.
    #[must_use]
    pub fn granule(&self, table: TableId, id: GranuleId) -> Option<&Granule> {
        self.granules.get(&(table, id))
    }

    /// Read a row.
    pub fn read(&self, table: TableId, id: GranuleId, key: u64) -> Result<Option<Bytes>, TxnError> {
        let g = self.granules.get(&(table, id)).ok_or(TxnError::WrongNode {
            granule: id,
            owner: marlin_common::NodeId(u32::MAX),
        })?;
        Ok(g.rows.get(&key).cloned())
    }

    /// Write a row. The key must fall in the granule's range.
    pub fn write(
        &mut self,
        table: TableId,
        id: GranuleId,
        key: u64,
        value: Bytes,
    ) -> Result<(), TxnError> {
        let g = self
            .granules
            .get_mut(&(table, id))
            .ok_or(TxnError::WrongNode {
                granule: id,
                owner: marlin_common::NodeId(u32::MAX),
            })?;
        debug_assert!(
            g.range.contains(key),
            "key {key} outside granule range {:?}",
            g.range
        );
        g.rows.insert(key, value);
        Ok(())
    }

    /// Scan all rows of a granule in key order (cache warm-up uses this).
    #[must_use]
    pub fn scan(&self, table: TableId, id: GranuleId) -> Vec<(u64, Bytes)> {
        self.granules
            .get(&(table, id))
            .map(|g| g.rows.iter().map(|(k, v)| (*k, v.clone())).collect())
            .unwrap_or_default()
    }

    /// IDs of all held granules.
    #[must_use]
    pub fn held(&self) -> Vec<(TableId, GranuleId)> {
        self.granules.keys().copied().collect()
    }

    /// Number of held granules.
    #[must_use]
    pub fn count(&self) -> usize {
        self.granules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> DataStore {
        let mut ds = DataStore::new();
        ds.install(
            TableId(0),
            GranuleId(0),
            Granule::new(KeyRange::new(0, 100)),
        );
        ds.install(
            TableId(0),
            GranuleId(1),
            Granule::new(KeyRange::new(100, 200)),
        );
        ds
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut ds = setup();
        ds.write(TableId(0), GranuleId(0), 42, Bytes::from_static(b"v"))
            .unwrap();
        assert_eq!(
            ds.read(TableId(0), GranuleId(0), 42).unwrap(),
            Some(Bytes::from_static(b"v"))
        );
        assert_eq!(ds.read(TableId(0), GranuleId(0), 43).unwrap(), None);
    }

    #[test]
    fn missing_granule_is_wrong_node() {
        let ds = setup();
        assert!(matches!(
            ds.read(TableId(0), GranuleId(9), 42),
            Err(TxnError::WrongNode {
                granule: GranuleId(9),
                ..
            })
        ));
    }

    #[test]
    fn migration_moves_rows_wholesale() {
        let mut src = setup();
        let mut dst = DataStore::new();
        src.write(TableId(0), GranuleId(1), 150, Bytes::from_static(b"x"))
            .unwrap();
        let g = src.remove(TableId(0), GranuleId(1)).unwrap();
        assert!(!src.holds(TableId(0), GranuleId(1)));
        dst.install(TableId(0), GranuleId(1), g);
        assert_eq!(
            dst.read(TableId(0), GranuleId(1), 150).unwrap(),
            Some(Bytes::from_static(b"x"))
        );
    }

    #[test]
    fn scan_is_key_ordered() {
        let mut ds = setup();
        for key in [30u64, 10, 20] {
            ds.write(TableId(0), GranuleId(0), key, Bytes::from_static(b"r"))
                .unwrap();
        }
        let keys: Vec<u64> = ds
            .scan(TableId(0), GranuleId(0))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![10, 20, 30]);
    }

    #[test]
    fn held_reports_identities() {
        let ds = setup();
        assert_eq!(ds.count(), 2);
        assert_eq!(
            ds.held(),
            vec![(TableId(0), GranuleId(0)), (TableId(0), GranuleId(1))]
        );
    }

    #[test]
    fn granule_bytes_accounts_values() {
        let mut g = Granule::new(KeyRange::new(0, 10));
        g.rows.insert(1, Bytes::from_static(b"abc"));
        g.rows.insert(2, Bytes::from_static(b"de"));
        assert_eq!(g.bytes(), 5);
    }
}
