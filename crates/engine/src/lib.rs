//! Per-node OLTP engine (the paper's Sundial-derived testbed, §5).
//!
//! Each compute node of the testbed contains a transaction manager and a
//! cache manager:
//!
//! - **Transaction manager** — two-phase locking for concurrency control
//!   with the deadlock-free `NO_WAIT` policy (lock conflict ⇒ immediate
//!   abort), two-phase commit for distributed atomicity (driven by
//!   `marlin-core`'s commit driver), and group commit batching log records
//!   from many transactions into a single log operation.
//! - **Cache manager** — a clock-replacement buffer cache over pages.
//!   Following the log-as-the-database paradigm, dirty pages are simply
//!   dropped on eviction (never written back); on a miss the page is
//!   fetched from the disaggregated page store via `GetPage@LSN`.
//!
//! The engine offers two data paths: a fully materialized row store
//! ([`store::DataStore`]) used by functional tests, examples, and
//! small-scale scenarios, and lightweight accounting used by the large
//! simulated experiments where tuple *values* are irrelevant to the
//! coordination behavior being measured (see DESIGN.md).

pub mod cache;
pub mod group_commit;
pub mod locks;
pub mod recovery;
pub mod store;
pub mod txn;
pub mod wal;

pub use cache::{CacheStats, ClockCache};
pub use group_commit::GroupCommitBuffer;
pub use locks::{LockMode, LockTable, LockTarget};
pub use store::{DataStore, Granule};
pub use txn::{TxnCtx, TxnState};
pub use wal::{RowWrite, TxnUpdateRecord};
