//! Per-transaction execution context.
//!
//! A [`TxnCtx`] accumulates the locks, reads, and writes of one transaction
//! as it executes, then hands its write set to the commit path (group
//! commit → WAL append) and releases locks. State transitions follow the
//! usual lifecycle: `Active → Committing → Committed` or `→ Aborted`.

use crate::locks::LockTarget;
use crate::wal::RowWrite;
use marlin_common::TxnId;

/// Lifecycle state of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnState {
    /// Executing: acquiring locks, buffering writes.
    Active,
    /// Commit initiated (votes or log append in flight).
    Committing,
    /// Durably committed.
    Committed,
    /// Aborted (NO_WAIT conflict, wrong node, or commit conflict).
    Aborted,
}

/// Execution context of one transaction on one node.
#[derive(Clone, Debug)]
pub struct TxnCtx {
    /// Transaction identity.
    pub id: TxnId,
    /// Current lifecycle state.
    pub state: TxnState,
    /// Locks acquired (released wholesale at end of transaction).
    pub locks: Vec<LockTarget>,
    /// Buffered writes, applied and logged only at commit.
    pub writes: Vec<RowWrite>,
    /// Number of read operations performed (statistics).
    pub reads: u64,
}

impl TxnCtx {
    /// Begin a transaction.
    #[must_use]
    pub fn begin(id: TxnId) -> Self {
        TxnCtx {
            id,
            state: TxnState::Active,
            locks: Vec::new(),
            writes: Vec::new(),
            reads: 0,
        }
    }

    /// Record an acquired lock.
    pub fn track_lock(&mut self, target: LockTarget) {
        self.locks.push(target);
    }

    /// Buffer a write.
    pub fn buffer_write(&mut self, write: RowWrite) {
        debug_assert_eq!(self.state, TxnState::Active, "writes only while active");
        self.writes.push(write);
    }

    /// Move to the committing state (no more execution).
    pub fn start_commit(&mut self) {
        debug_assert_eq!(self.state, TxnState::Active);
        self.state = TxnState::Committing;
    }

    /// Mark durably committed.
    pub fn mark_committed(&mut self) {
        debug_assert_eq!(self.state, TxnState::Committing);
        self.state = TxnState::Committed;
    }

    /// Mark aborted (valid from any non-terminal state).
    pub fn mark_aborted(&mut self) {
        debug_assert_ne!(
            self.state,
            TxnState::Committed,
            "cannot abort a committed txn"
        );
        self.state = TxnState::Aborted;
    }

    /// Whether the transaction reached a terminal state.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.state, TxnState::Committed | TxnState::Aborted)
    }

    /// Whether the transaction wrote anything (read-only txns skip logging).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use marlin_common::{GranuleId, NodeId, TableId};

    fn w(key: u64) -> RowWrite {
        RowWrite {
            table: TableId(0),
            granule: GranuleId(0),
            key,
            page_index: 0,
            value: Bytes::from_static(b"v"),
        }
    }

    #[test]
    fn lifecycle_commit_path() {
        let mut t = TxnCtx::begin(TxnId::new(NodeId(0), 1));
        assert_eq!(t.state, TxnState::Active);
        t.buffer_write(w(1));
        t.start_commit();
        assert_eq!(t.state, TxnState::Committing);
        t.mark_committed();
        assert!(t.is_done());
        assert!(!t.is_read_only());
    }

    #[test]
    fn lifecycle_abort_path() {
        let mut t = TxnCtx::begin(TxnId::new(NodeId(0), 2));
        t.mark_aborted();
        assert_eq!(t.state, TxnState::Aborted);
        assert!(t.is_done());
    }

    #[test]
    fn read_only_detection() {
        let mut t = TxnCtx::begin(TxnId::new(NodeId(0), 3));
        t.reads += 5;
        assert!(t.is_read_only());
        t.buffer_write(w(9));
        assert!(!t.is_read_only());
    }
}
