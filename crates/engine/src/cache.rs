//! Buffer cache with clock (second-chance) replacement.
//!
//! "The cache manager uses the clock replacement algorithm" (§5). Following
//! the log-as-the-database paradigm, an evicted dirty page is simply
//! dropped — the WAL is the ground truth and the page store materializes it
//! independently, so no write-back path exists (§3.2).
//!
//! The cache stores page *identities* plus optional payloads: the large
//! simulated experiments track residency (hit/miss behavior) without
//! materializing page bytes, while functional callers can attach content.

use bytes::Bytes;
use marlin_common::PageId;
use std::collections::HashMap;

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_drops: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 if no accesses.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: PageId,
    referenced: bool,
    dirty: bool,
    payload: Option<Bytes>,
}

/// A fixed-capacity clock-replacement page cache.
#[derive(Debug)]
pub struct ClockCache {
    frames: Vec<Frame>,
    index: HashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
    stats: CacheStats,
}

impl ClockCache {
    /// Create a cache holding at most `capacity` pages.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs at least one frame");
        ClockCache {
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            index: HashMap::new(),
            hand: 0,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probe for `page`, setting its reference bit on a hit. Returns `true`
    /// on hit. This is the access used by the accounting data plane.
    pub fn access(&mut self, page: PageId) -> bool {
        if let Some(&slot) = self.index.get(&page) {
            self.frames[slot].referenced = true;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Look up a resident page's payload without affecting stats beyond a
    /// normal access.
    pub fn get(&mut self, page: PageId) -> Option<Bytes> {
        if self.access(page) {
            let slot = self.index[&page];
            self.frames[slot].payload.clone()
        } else {
            None
        }
    }

    /// Insert (or refresh) a page after fetching it from the page store.
    /// Evicts via the clock hand if full.
    pub fn insert(&mut self, page: PageId, payload: Option<Bytes>) {
        if let Some(&slot) = self.index.get(&page) {
            let frame = &mut self.frames[slot];
            frame.referenced = true;
            frame.payload = payload;
            return;
        }
        // Freshly inserted pages start with a clear reference bit: only a
        // subsequent access grants a second chance. (The re-insert path
        // above sets the bit because a refresh *is* an access.)
        if self.frames.len() < self.capacity {
            let slot = self.frames.len();
            self.frames.push(Frame {
                page,
                referenced: false,
                dirty: false,
                payload,
            });
            self.index.insert(page, slot);
            return;
        }
        let slot = self.run_clock();
        let frame = &mut self.frames[slot];
        self.index.remove(&frame.page);
        self.stats.evictions += 1;
        if frame.dirty {
            // Log-as-the-database: dirty pages are dropped, never written back.
            self.stats.dirty_drops += 1;
        }
        *frame = Frame {
            page,
            referenced: false,
            dirty: false,
            payload,
        };
        self.index.insert(page, slot);
    }

    /// Mark a resident page dirty (a write touched it). No-op if absent.
    pub fn mark_dirty(&mut self, page: PageId) {
        if let Some(&slot) = self.index.get(&page) {
            self.frames[slot].dirty = true;
        }
    }

    /// Drop a page (ownership moved away; its cached copy is stale).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(slot) = self.index.remove(&page) {
            // Leave the frame in place but claimable: clear its identity by
            // pointing it at a tombstone that can never be accessed.
            self.frames[slot].referenced = false;
            self.frames[slot].dirty = false;
            self.frames[slot].payload = None;
            self.frames[slot].page = TOMBSTONE;
        }
    }

    /// Drop every page for which `pred` returns true (e.g. all pages of a
    /// migrated granule).
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(PageId) -> bool) {
        let victims: Vec<PageId> = self.index.keys().copied().filter(|p| pred(*p)).collect();
        for page in victims {
            self.invalidate(page);
        }
    }

    fn run_clock(&mut self) -> usize {
        // Second chance: clear reference bits until an unreferenced frame
        // is found. Terminates within two sweeps.
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[slot];
            if frame.page == TOMBSTONE {
                return slot;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                return slot;
            }
        }
    }
}

/// Reserved identity for invalidated frames.
const TOMBSTONE: PageId = PageId {
    table: marlin_common::TableId(u32::MAX),
    granule: marlin_common::GranuleId(u64::MAX),
    index: u32::MAX,
};

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::{GranuleId, TableId};

    fn pid(i: u32) -> PageId {
        PageId {
            table: TableId(0),
            granule: GranuleId(u64::from(i) / 4),
            index: i,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = ClockCache::new(4);
        assert!(!c.access(pid(0)));
        c.insert(pid(0), None);
        assert!(c.access(pid(0)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_respects_reference_bits() {
        let mut c = ClockCache::new(2);
        c.insert(pid(0), None);
        c.insert(pid(1), None);
        // Touch page 0 so it has a second chance.
        assert!(c.access(pid(0)));
        c.insert(pid(2), None);
        // Page 1 should be the victim (page 0 was referenced).
        assert!(c.access(pid(0)));
        assert!(!c.access(pid(1)));
        assert!(c.access(pid(2)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_pages_are_dropped_not_written_back() {
        let mut c = ClockCache::new(1);
        c.insert(pid(0), None);
        c.mark_dirty(pid(0));
        c.insert(pid(1), None); // evicts dirty page 0
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.dirty_drops, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = ClockCache::new(8);
        for i in 0..1_000 {
            c.insert(pid(i), None);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 1_000 - 8);
    }

    #[test]
    fn payloads_survive_residency() {
        let mut c = ClockCache::new(4);
        c.insert(pid(0), Some(Bytes::from_static(b"content")));
        assert_eq!(c.get(pid(0)).unwrap(), Bytes::from_static(b"content"));
        assert_eq!(c.get(pid(9)), None);
    }

    #[test]
    fn invalidate_frees_a_slot() {
        let mut c = ClockCache::new(2);
        c.insert(pid(0), None);
        c.insert(pid(1), None);
        c.invalidate(pid(0));
        assert_eq!(c.len(), 1);
        assert!(!c.access(pid(0)));
        c.insert(pid(2), None);
        // pid(1) must survive: the tombstoned frame is reused first.
        assert!(c.access(pid(1)));
        assert!(c.access(pid(2)));
    }

    #[test]
    fn invalidate_if_drops_a_granules_pages() {
        let mut c = ClockCache::new(16);
        for i in 0..8 {
            c.insert(pid(i), None);
        }
        // Granule 0 covers pages 0..4 under the test mapping.
        c.invalidate_if(|p| p.granule == GranuleId(0));
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            assert!(!c.access(pid(i)));
        }
        for i in 4..8 {
            assert!(c.access(pid(i)));
        }
    }

    #[test]
    fn reinsert_refreshes_payload_in_place() {
        let mut c = ClockCache::new(2);
        c.insert(pid(0), Some(Bytes::from_static(b"v1")));
        c.insert(pid(0), Some(Bytes::from_static(b"v2")));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(pid(0)).unwrap(), Bytes::from_static(b"v2"));
    }

    #[test]
    fn working_set_larger_than_capacity_degrades_hit_ratio() {
        let mut small = ClockCache::new(16);
        let mut big = ClockCache::new(256);
        // Cyclic scan over 64 pages: pathological for any cache smaller
        // than the working set.
        for round in 0..20 {
            for i in 0..64 {
                for c in [&mut small, &mut big] {
                    if !c.access(pid(i)) {
                        c.insert(pid(i), None);
                    }
                }
                let _ = round;
            }
        }
        assert!(big.stats().hit_ratio() > 0.9);
        assert!(small.stats().hit_ratio() < big.stats().hit_ratio());
    }
}
